//! Ubiquitous (per-cell) iterative Sobol' indices — the paper's central
//! data structure (Sections 2.2 and 3.3).
//!
//! For a field output `Y(x, t)` the Sobol' indices are themselves fields
//! `S_k(x, t)`.  Melissa Server keeps one [`UbiquitousSobol`] state per
//! timestep per server process (covering that process's slab of cells) and
//! folds in each simulation group's field results as they arrive, in any
//! order, then discards the data.
//!
//! ## Memory layout
//!
//! A structure-of-arrays layout with **fused updates**: one Rayon-parallel
//! sweep per group folds the `p + 2` incoming fields into all accumulators.
//! Because the marginal mean of `Y^B` inside `Cov(Y^B, Y^{C^k})` is the same
//! stream as the marginal moments of `Y^B`, means are shared across the
//! covariance and variance accumulators, bringing the state down to
//! `4 + 4p` doubles per cell (for the paper's `p = 6` use case: 28 doubles
//! = 224 bytes per cell per timestep).

use rayon::prelude::*;

use crate::confidence::{first_order_interval, total_order_interval, ConfidenceInterval};

/// Minimum cells per Rayon task in the update sweep.
const PAR_CHUNK: usize = 2048;

/// Per-cell one-pass Sobol' accumulator over a field of `cells` outputs.
///
/// Feed [`update_group`](Self::update_group) the `p + 2` result fields of
/// one simulation group (canonical role order `[Y^A, Y^B, Y^{C^0}, …]`).
#[derive(Debug, Clone, PartialEq)]
pub struct UbiquitousSobol {
    p: usize,
    cells: usize,
    n: u64,
    /// Means: `[A, B, C^0 … C^{p−1}]`, each `cells` long.
    mean: Vec<Vec<f64>>,
    /// Second central moment sums, same layout as `mean`.
    m2: Vec<Vec<f64>>,
    /// Co-moment sums of `(Y^B, Y^{C^k})` per parameter.
    c_bc: Vec<Vec<f64>>,
    /// Co-moment sums of `(Y^A, Y^{C^k})` per parameter.
    c_ac: Vec<Vec<f64>>,
}

impl UbiquitousSobol {
    /// Creates a zeroed accumulator for `p` parameters over `cells` cells.
    ///
    /// # Panics
    /// Panics if `p == 0` or `cells == 0`.
    pub fn new(p: usize, cells: usize) -> Self {
        assert!(p > 0, "need at least one parameter");
        assert!(cells > 0, "need at least one cell");
        Self {
            p,
            cells,
            n: 0,
            mean: vec![vec![0.0; cells]; p + 2],
            m2: vec![vec![0.0; cells]; p + 2],
            c_bc: vec![vec![0.0; cells]; p],
            c_ac: vec![vec![0.0; cells]; p],
        }
    }

    /// Number of input parameters `p`.
    pub fn dim(&self) -> usize {
        self.p
    }

    /// Number of cells covered.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of groups folded in.
    pub fn n_groups(&self) -> u64 {
        self.n
    }

    /// State size in doubles per cell (`4 + 4p`), for memory accounting.
    pub fn doubles_per_cell(p: usize) -> usize {
        4 + 4 * p
    }

    /// Folds in the `p + 2` result fields of one completed group.
    ///
    /// # Panics
    /// Panics if the number of fields is not `p + 2` or any field length
    /// differs from `cells`.
    pub fn update_group(&mut self, fields: &[&[f64]]) {
        assert_eq!(fields.len(), self.p + 2, "expected p + 2 result fields");
        for f in fields {
            assert_eq!(f.len(), self.cells, "field length mismatch");
        }
        self.n += 1;
        let n = self.n as f64;
        let p = self.p;

        // Split every state array into parallel chunks, then walk cells.
        let chunks = self.cells.div_ceil(PAR_CHUNK);
        let mut mean_parts: Vec<Vec<&mut [f64]>> =
            self.mean.iter_mut().map(|v| v.chunks_mut(PAR_CHUNK).collect()).collect();
        let mut m2_parts: Vec<Vec<&mut [f64]>> =
            self.m2.iter_mut().map(|v| v.chunks_mut(PAR_CHUNK).collect()).collect();
        let mut cbc_parts: Vec<Vec<&mut [f64]>> =
            self.c_bc.iter_mut().map(|v| v.chunks_mut(PAR_CHUNK).collect()).collect();
        let mut cac_parts: Vec<Vec<&mut [f64]>> =
            self.c_ac.iter_mut().map(|v| v.chunks_mut(PAR_CHUNK).collect()).collect();

        // Transpose to per-chunk bundles so each Rayon task owns disjoint
        // slices of every array.
        let mut tasks: Vec<ChunkTask<'_>> = Vec::with_capacity(chunks);
        for c in (0..chunks).rev() {
            tasks.push(ChunkTask {
                start: c * PAR_CHUNK,
                mean: mean_parts.iter_mut().map(|v| v.remove(c)).collect(),
                m2: m2_parts.iter_mut().map(|v| v.remove(c)).collect(),
                c_bc: cbc_parts.iter_mut().map(|v| v.remove(c)).collect(),
                c_ac: cac_parts.iter_mut().map(|v| v.remove(c)).collect(),
            });
        }

        tasks.par_iter_mut().for_each(|task| {
            let len = task.mean[0].len();
            let base = task.start;
            for i in 0..len {
                let g = base + i;
                let ya = fields[0][g];
                let yb = fields[1][g];
                // Marginal updates for A and B (Welford).
                let da = ya - task.mean[0][i];
                task.mean[0][i] += da / n;
                task.m2[0][i] += da * (ya - task.mean[0][i]);
                let db = yb - task.mean[1][i];
                task.mean[1][i] += db / n;
                task.m2[1][i] += db * (yb - task.mean[1][i]);
                for k in 0..p {
                    let yc = fields[2 + k][g];
                    let dc = yc - task.mean[2 + k][i];
                    task.mean[2 + k][i] += dc / n;
                    let resid = yc - task.mean[2 + k][i];
                    task.m2[2 + k][i] += dc * resid;
                    // Co-moments use the pre-update x-delta and the
                    // post-update y-mean — identical to `OnlineCovariance`.
                    task.c_bc[k][i] += db * resid;
                    task.c_ac[k][i] += da * resid;
                }
            }
        });
    }

    /// Merges another accumulator covering the *same cells* (pairwise
    /// Chan/Pébay formulas).  Used by reduction trees and restart tests.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.p, other.p, "dimension mismatch");
        assert_eq!(self.cells, other.cells, "cell-count mismatch");
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let ratio = na * nb / n;
        for role in 0..self.p + 2 {
            for i in 0..self.cells {
                let d = other.mean[role][i] - self.mean[role][i];
                self.m2[role][i] += other.m2[role][i] + d * d * ratio;
            }
        }
        for k in 0..self.p {
            for i in 0..self.cells {
                let db = other.mean[1][i] - self.mean[1][i];
                let da = other.mean[0][i] - self.mean[0][i];
                let dc = other.mean[2 + k][i] - self.mean[2 + k][i];
                self.c_bc[k][i] += other.c_bc[k][i] + db * dc * ratio;
                self.c_ac[k][i] += other.c_ac[k][i] + da * dc * ratio;
            }
        }
        for role in 0..self.p + 2 {
            for i in 0..self.cells {
                let d = other.mean[role][i] - self.mean[role][i];
                self.mean[role][i] += d * nb / n;
            }
        }
        self.n += other.n;
    }

    /// First-order Sobol' index field `S_k(x)` (Martinez, Eq. 5).
    /// Cells with degenerate variance yield `0.0`.
    pub fn first_order_field(&self, k: usize) -> Vec<f64> {
        assert!(k < self.p, "parameter index out of range");
        (0..self.cells)
            .map(|i| ratio_correlation(self.c_bc[k][i], self.m2[1][i], self.m2[2 + k][i]))
            .collect()
    }

    /// Total-order Sobol' index field `ST_k(x)` (Martinez, Eq. 6).
    pub fn total_order_field(&self, k: usize) -> Vec<f64> {
        assert!(k < self.p, "parameter index out of range");
        (0..self.cells)
            .map(|i| 1.0 - ratio_correlation(self.c_ac[k][i], self.m2[0][i], self.m2[2 + k][i]))
            .collect()
    }

    /// First-order index of one cell.
    pub fn first_order_at(&self, cell: usize, k: usize) -> f64 {
        ratio_correlation(self.c_bc[k][cell], self.m2[1][cell], self.m2[2 + k][cell])
    }

    /// Total-order index of one cell.
    pub fn total_order_at(&self, cell: usize, k: usize) -> f64 {
        1.0 - ratio_correlation(self.c_ac[k][cell], self.m2[0][cell], self.m2[2 + k][cell])
    }

    /// Output variance field (unbiased, from the `Y^A` sample) — the
    /// denominator field the paper recommends co-visualising (Fig. 8).
    pub fn variance_field(&self) -> Vec<f64> {
        if self.n < 2 {
            return vec![0.0; self.cells];
        }
        let denom = self.n as f64 - 1.0;
        self.m2[0].iter().map(|m2| m2 / denom).collect()
    }

    /// Output mean field (from the `Y^A` sample).
    pub fn mean_field(&self) -> Vec<f64> {
        self.mean[0].clone()
    }

    /// Interaction-share field `1 − Σ_k S_k(x)` (paper Section 5.5 item 4).
    pub fn interaction_field(&self) -> Vec<f64> {
        let mut acc = vec![1.0; self.cells];
        for k in 0..self.p {
            for (a, s) in acc.iter_mut().zip(self.first_order_field(k)) {
                *a -= s;
            }
        }
        acc
    }

    /// 95 % CI on `S_k` at one cell (paper Eq. 8).
    pub fn first_order_ci_at(&self, cell: usize, k: usize) -> ConfidenceInterval {
        first_order_interval(self.first_order_at(cell, k), self.n)
    }

    /// 95 % CI on `ST_k` at one cell (paper Eq. 9).
    pub fn total_order_ci_at(&self, cell: usize, k: usize) -> ConfidenceInterval {
        total_order_interval(self.total_order_at(cell, k), self.n)
    }

    /// Largest CI width over all cells and parameters, optionally masked to
    /// cells whose output variance exceeds `min_variance` (the paper notes
    /// indices are meaningless where `Var(Y) ≈ 0`).  This is the scalar the
    /// server reports for convergence control (Section 4.1.5).
    pub fn max_ci_width(&self, min_variance: f64) -> f64 {
        let var = self.variance_field();
        let mut w: f64 = 0.0;
        for (i, &v) in var.iter().enumerate() {
            if v <= min_variance {
                continue;
            }
            for k in 0..self.p {
                w = w.max(self.first_order_ci_at(i, k).width());
                w = w.max(self.total_order_ci_at(i, k).width());
            }
        }
        w
    }

    /// Flattens the full state to `(n, flat)` for checkpointing.  Array
    /// order: means (p+2), m2 (p+2), c_bc (p), c_ac (p).
    pub fn pack(&self) -> (u64, Vec<f64>) {
        let mut flat = Vec::with_capacity((4 + 4 * self.p) * self.cells);
        for arr in self.mean.iter().chain(&self.m2).chain(&self.c_bc).chain(&self.c_ac) {
            flat.extend_from_slice(arr);
        }
        (self.n, flat)
    }

    /// Rebuilds from [`pack`](Self::pack) output.
    ///
    /// # Panics
    /// Panics if `flat` has the wrong length.
    pub fn unpack(p: usize, cells: usize, n: u64, flat: &[f64]) -> Self {
        let arrays = 2 * (p + 2) + 2 * p;
        assert_eq!(flat.len(), arrays * cells, "bad checkpoint payload length");
        let mut it = flat.chunks_exact(cells).map(|c| c.to_vec());
        let mean: Vec<Vec<f64>> = (0..p + 2).map(|_| it.next().unwrap()).collect();
        let m2: Vec<Vec<f64>> = (0..p + 2).map(|_| it.next().unwrap()).collect();
        let c_bc: Vec<Vec<f64>> = (0..p).map(|_| it.next().unwrap()).collect();
        let c_ac: Vec<Vec<f64>> = (0..p).map(|_| it.next().unwrap()).collect();
        Self { p, cells, n, mean, m2, c_bc, c_ac }
    }
}

/// Disjoint mutable chunk bundle processed by one Rayon task.
struct ChunkTask<'a> {
    start: usize,
    mean: Vec<&'a mut [f64]>,
    m2: Vec<&'a mut [f64]>,
    c_bc: Vec<&'a mut [f64]>,
    c_ac: Vec<&'a mut [f64]>,
}

/// `c2 / sqrt(m2x · m2y)` with degenerate-variance guard; the `(n−1)`
/// normalisations cancel.
#[inline]
fn ratio_correlation(c2: f64, m2x: f64, m2y: f64) -> f64 {
    if m2x <= 0.0 || m2y <= 0.0 {
        0.0
    } else {
        c2 / (m2x * m2y).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::martinez::IterativeSobol;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const P: usize = 4;
    const CELLS: usize = 37;

    /// Random group results: p+2 fields of CELLS values.
    fn random_groups(n: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..P + 2)
                    .map(|_| (0..CELLS).map(|_| rng.gen::<f64>() * 5.0 - 1.0).collect())
                    .collect()
            })
            .collect()
    }

    fn feed(acc: &mut UbiquitousSobol, groups: &[Vec<Vec<f64>>]) {
        for g in groups {
            let refs: Vec<&[f64]> = g.iter().map(|f| f.as_slice()).collect();
            acc.update_group(&refs);
        }
    }

    #[test]
    fn every_cell_matches_scalar_iterative_sobol() {
        let groups = random_groups(50, 1);
        let mut field = UbiquitousSobol::new(P, CELLS);
        feed(&mut field, &groups);

        for cell in [0usize, 3, CELLS - 1] {
            let mut scalar = IterativeSobol::new(P);
            for g in &groups {
                let outputs: Vec<f64> = g.iter().map(|f| f[cell]).collect();
                scalar.update_group(&outputs);
            }
            for k in 0..P {
                assert!(
                    (field.first_order_at(cell, k) - scalar.first_order(k)).abs() < 1e-12,
                    "cell {cell} S_{k}"
                );
                assert!(
                    (field.total_order_at(cell, k) - scalar.total_order(k)).abs() < 1e-12,
                    "cell {cell} ST_{k}"
                );
            }
            assert!((field.variance_field()[cell] - scalar.output_variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn group_order_invariance() {
        let groups = random_groups(30, 2);
        let mut fwd = UbiquitousSobol::new(P, CELLS);
        feed(&mut fwd, &groups);
        let mut rev = UbiquitousSobol::new(P, CELLS);
        let reversed: Vec<_> = groups.iter().rev().cloned().collect();
        feed(&mut rev, &reversed);
        for k in 0..P {
            let (a, b) = (fwd.first_order_field(k), rev.first_order_field(k));
            for i in 0..CELLS {
                assert!((a[i] - b[i]).abs() < 1e-10, "cell {i} param {k}");
            }
        }
    }

    #[test]
    fn merge_matches_sequential() {
        let groups = random_groups(40, 3);
        let mut whole = UbiquitousSobol::new(P, CELLS);
        feed(&mut whole, &groups);

        let mut left = UbiquitousSobol::new(P, CELLS);
        feed(&mut left, &groups[..17]);
        let mut right = UbiquitousSobol::new(P, CELLS);
        feed(&mut right, &groups[17..]);
        left.merge(&right);

        assert_eq!(left.n_groups(), whole.n_groups());
        for k in 0..P {
            let (a, b) = (left.total_order_field(k), whole.total_order_field(k));
            for i in 0..CELLS {
                assert!((a[i] - b[i]).abs() < 1e-9, "cell {i} param {k}");
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let groups = random_groups(12, 4);
        let mut acc = UbiquitousSobol::new(P, CELLS);
        feed(&mut acc, &groups);
        let (n, flat) = acc.pack();
        let back = UbiquitousSobol::unpack(P, CELLS, n, &flat);
        assert_eq!(acc, back);
    }

    #[test]
    fn interaction_field_complements_first_order_sum() {
        let groups = random_groups(25, 5);
        let mut acc = UbiquitousSobol::new(P, CELLS);
        feed(&mut acc, &groups);
        let inter = acc.interaction_field();
        let sums: Vec<f64> = (0..CELLS)
            .map(|i| (0..P).map(|k| acc.first_order_field(k)[i]).sum::<f64>())
            .collect();
        for i in 0..CELLS {
            assert!((inter[i] + sums[i] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn max_ci_width_masks_degenerate_cells() {
        // One constant cell (zero variance) must not contribute.
        let mut groups = random_groups(20, 6);
        for g in &mut groups {
            for f in g.iter_mut() {
                f[0] = 3.33; // cell 0 constant across all sims
            }
        }
        let mut acc = UbiquitousSobol::new(P, CELLS);
        feed(&mut acc, &groups);
        let w = acc.max_ci_width(1e-12);
        assert!(w.is_finite() && w > 0.0);
    }

    #[test]
    fn memory_accounting_formula() {
        assert_eq!(UbiquitousSobol::doubles_per_cell(6), 28);
        let acc = UbiquitousSobol::new(6, 10);
        let (_, flat) = acc.pack();
        assert_eq!(flat.len(), 28 * 10);
    }

    #[test]
    #[should_panic(expected = "field length mismatch")]
    fn wrong_field_length_panics() {
        let mut acc = UbiquitousSobol::new(2, 4);
        let bad = [vec![0.0; 4], vec![0.0; 4], vec![0.0; 3], vec![0.0; 4]];
        let refs: Vec<&[f64]> = bad.iter().map(|f| f.as_slice()).collect();
        acc.update_group(&refs);
    }
}
