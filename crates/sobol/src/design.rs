//! Pick-freeze experiment design (paper Section 3.2).
//!
//! Two independent `n × p` sample matrices `A` and `B` are drawn from the
//! parameter space.  For each `k ∈ [1, p]`, `C^k` equals `A` with column `k`
//! replaced by column `k` of `B`.  Row `i` of all `p + 2` matrices forms one
//! *simulation group* of `p + 2` parameter sets, run synchronously so the
//! server can update every Sobol' index from a single timestep's results and
//! then discard the data.
//!
//! The rows of `(A, B)` are i.i.d., so it is statistically valid to extend a
//! design with freshly drawn rows ([`PickFreeze::extend_rows`]) when
//! convergence is not reached (paper Section 3.4), or to *replace* a failing
//! group with a brand new row ([`PickFreeze::redraw_row`], Section 4.2.1).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::param::ParameterSpace;

/// Which member of a simulation group a given simulation is.
///
/// Group `i` runs `f(A_i)`, `f(B_i)` and `f(C^k_i)` for `k ∈ [0, p)`.
/// The wire format and the server bookkeeping identify each simulation by
/// this role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulationRole {
    /// Row of matrix `A`.
    MatrixA,
    /// Row of matrix `B`.
    MatrixB,
    /// Row of matrix `C^k` (0-based parameter index).
    MatrixC(usize),
}

impl SimulationRole {
    /// Enumerates the `p + 2` roles in canonical group order
    /// `[A, B, C^0, …, C^{p−1}]`.
    pub fn all(p: usize) -> Vec<SimulationRole> {
        let mut v = Vec::with_capacity(p + 2);
        v.push(SimulationRole::MatrixA);
        v.push(SimulationRole::MatrixB);
        v.extend((0..p).map(SimulationRole::MatrixC));
        v
    }

    /// Canonical position of this role inside a group (`A`=0, `B`=1,
    /// `C^k`=2+k).
    pub fn index(&self) -> usize {
        match *self {
            SimulationRole::MatrixA => 0,
            SimulationRole::MatrixB => 1,
            SimulationRole::MatrixC(k) => 2 + k,
        }
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    /// Panics if `idx >= p + 2`.
    pub fn from_index(idx: usize, p: usize) -> SimulationRole {
        match idx {
            0 => SimulationRole::MatrixA,
            1 => SimulationRole::MatrixB,
            k if k < p + 2 => SimulationRole::MatrixC(k - 2),
            _ => panic!("role index {idx} out of range for p = {p}"),
        }
    }
}

/// The `p + 2` parameter sets of one simulation group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRows {
    group_id: usize,
    /// Rows in canonical role order `[A_i, B_i, C^0_i, …]`.
    rows: Vec<Vec<f64>>,
}

impl GroupRows {
    /// The group identifier (row index in the design).
    pub fn group_id(&self) -> usize {
        self.group_id
    }

    /// All `p + 2` parameter sets in canonical role order.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The parameter set for a given role.
    pub fn row(&self, role: SimulationRole) -> &[f64] {
        &self.rows[role.index()]
    }

    /// Number of simulations in the group (`p + 2`).
    pub fn size(&self) -> usize {
        self.rows.len()
    }
}

/// A pick-freeze design: matrices `A` and `B` (row-major `n × p`).
#[derive(Debug, Clone, PartialEq)]
pub struct PickFreeze {
    p: usize,
    a: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
}

impl PickFreeze {
    /// Draws `n` rows for `A` and `B` from `space`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    /// Panics if the parameter space is empty.
    pub fn generate(n: usize, space: &ParameterSpace, seed: u64) -> Self {
        assert!(space.dim() > 0, "parameter space must not be empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let a = (0..n).map(|_| space.sample_row(&mut rng)).collect();
        let b = (0..n).map(|_| space.sample_row(&mut rng)).collect();
        Self {
            p: space.dim(),
            a,
            b,
        }
    }

    /// Builds a design from explicit matrices (for tests and replay).
    ///
    /// # Panics
    /// Panics if shapes are inconsistent.
    pub fn from_matrices(a: Vec<Vec<f64>>, b: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            a.len(),
            b.len(),
            "A and B must have the same number of rows"
        );
        assert!(!a.is_empty(), "design must have at least one row");
        let p = a[0].len();
        assert!(p > 0, "design must have at least one parameter");
        for row in a.iter().chain(b.iter()) {
            assert_eq!(row.len(), p, "ragged design matrix");
        }
        Self { p, a, b }
    }

    /// Number of parameters `p`.
    pub fn dim(&self) -> usize {
        self.p
    }

    /// Number of rows `n` (equals the number of simulation groups).
    pub fn n_rows(&self) -> usize {
        self.a.len()
    }

    /// Number of simulations in the whole study: `n × (p + 2)`.
    pub fn n_simulations(&self) -> usize {
        self.n_rows() * (self.p + 2)
    }

    /// Row `i` of matrix `A`.
    pub fn row_a(&self, i: usize) -> &[f64] {
        &self.a[i]
    }

    /// Row `i` of matrix `B`.
    pub fn row_b(&self, i: usize) -> &[f64] {
        &self.b[i]
    }

    /// Row `i` of matrix `C^k`: `A_i` with coordinate `k` from `B_i`.
    pub fn row_c(&self, i: usize, k: usize) -> Vec<f64> {
        assert!(
            k < self.p,
            "parameter index {k} out of range (p = {})",
            self.p
        );
        let mut row = self.a[i].clone();
        row[k] = self.b[i][k];
        row
    }

    /// The `p + 2` parameter sets of group `i` in canonical role order.
    pub fn group(&self, i: usize) -> GroupRows {
        let mut rows = Vec::with_capacity(self.p + 2);
        rows.push(self.a[i].clone());
        rows.push(self.b[i].clone());
        for k in 0..self.p {
            rows.push(self.row_c(i, k));
        }
        GroupRows { group_id: i, rows }
    }

    /// Iterates over all simulation groups.
    pub fn groups(&self) -> impl Iterator<Item = GroupRows> + '_ {
        (0..self.n_rows()).map(|i| self.group(i))
    }

    /// Appends `extra` freshly drawn rows (adaptive continuation,
    /// paper Section 3.4).  Returns the ids of the new groups.
    pub fn extend_rows(&mut self, extra: usize, space: &ParameterSpace, seed: u64) -> Vec<usize> {
        assert_eq!(space.dim(), self.p, "parameter space dimension changed");
        let mut rng = StdRng::seed_from_u64(seed);
        let start = self.n_rows();
        for _ in 0..extra {
            self.a.push(space.sample_row(&mut rng));
            self.b.push(space.sample_row(&mut rng));
        }
        (start..self.n_rows()).collect()
    }

    /// Replaces row `i` with a freshly drawn couple (used when a group fails
    /// permanently and discard-on-replay is disabled, paper Section 4.2.1).
    pub fn redraw_row(&mut self, i: usize, space: &ParameterSpace, seed: u64) {
        assert_eq!(space.dim(), self.p, "parameter space dimension changed");
        let mut rng = StdRng::seed_from_u64(seed);
        self.a[i] = space.sample_row(&mut rng);
        self.b[i] = space.sample_row(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Parameter;

    fn space3() -> ParameterSpace {
        ParameterSpace::new(vec![
            Parameter::uniform("x1", 0.0, 1.0),
            Parameter::uniform("x2", 0.0, 1.0),
            Parameter::uniform("x3", 0.0, 1.0),
        ])
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let s = space3();
        let d1 = PickFreeze::generate(10, &s, 99);
        let d2 = PickFreeze::generate(10, &s, 99);
        let d3 = PickFreeze::generate(10, &s, 100);
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn a_and_b_are_distinct_samples() {
        let d = PickFreeze::generate(5, &space3(), 1);
        for i in 0..5 {
            assert_ne!(d.row_a(i), d.row_b(i));
        }
    }

    #[test]
    fn ck_row_mixes_a_and_b_correctly() {
        let a = vec![vec![1.0, 2.0, 3.0]];
        let b = vec![vec![10.0, 20.0, 30.0]];
        let d = PickFreeze::from_matrices(a, b);
        assert_eq!(d.row_c(0, 0), vec![10.0, 2.0, 3.0]);
        assert_eq!(d.row_c(0, 1), vec![1.0, 20.0, 3.0]);
        assert_eq!(d.row_c(0, 2), vec![1.0, 2.0, 30.0]);
    }

    #[test]
    fn group_has_p_plus_2_rows_in_canonical_order() {
        let d = PickFreeze::generate(4, &space3(), 5);
        let g = d.group(2);
        assert_eq!(g.size(), 5);
        assert_eq!(g.group_id(), 2);
        assert_eq!(g.row(SimulationRole::MatrixA), d.row_a(2));
        assert_eq!(g.row(SimulationRole::MatrixB), d.row_b(2));
        assert_eq!(g.row(SimulationRole::MatrixC(1)), d.row_c(2, 1).as_slice());
        assert_eq!(d.n_simulations(), 4 * 5);
    }

    #[test]
    fn roles_roundtrip_through_indices() {
        for role in SimulationRole::all(6) {
            assert_eq!(SimulationRole::from_index(role.index(), 6), role);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn role_index_out_of_range_panics() {
        SimulationRole::from_index(9, 6);
    }

    #[test]
    fn extend_rows_appends_new_independent_groups() {
        let s = space3();
        let mut d = PickFreeze::generate(3, &s, 7);
        let before = d.clone();
        let new_ids = d.extend_rows(2, &s, 8);
        assert_eq!(new_ids, vec![3, 4]);
        assert_eq!(d.n_rows(), 5);
        // Existing rows untouched.
        for i in 0..3 {
            assert_eq!(d.row_a(i), before.row_a(i));
            assert_eq!(d.row_b(i), before.row_b(i));
        }
    }

    #[test]
    fn redraw_row_changes_only_that_row() {
        let s = space3();
        let mut d = PickFreeze::generate(3, &s, 7);
        let before = d.clone();
        d.redraw_row(1, &s, 1234);
        assert_eq!(d.row_a(0), before.row_a(0));
        assert_eq!(d.row_a(2), before.row_a(2));
        assert_ne!(d.row_a(1), before.row_a(1));
    }
}
