//! Fused single-sweep server ingest kernel.
//!
//! When a `(group, timestep)` assembly completes, Melissa Server must fold
//! the `p + 2` role fields into **four** statistics families: the
//! ubiquitous Sobol' state (all roles), and the field moments, min/max
//! envelope and threshold-exceedance counters (the i.i.d. `Y^A`/`Y^B`
//! samples only, paper Section 4.1).  Doing that as four independent
//! Rayon sweeps re-reads the fields and re-pays the parallel dispatch per
//! statistic; [`FusedSlabUpdate`] folds everything in **one** tile-parallel
//! pass: each tile task updates its slice of every accumulator while the
//! incoming field stripe is hot in L1.
//!
//! The fused path is arithmetic-for-arithmetic identical to calling
//! [`UbiquitousSobol::update_group`] followed by the individual
//! `FieldMoments::update(Y^A)`, `update(Y^B)` (and likewise min/max and
//! thresholds) — same scalar recurrences, same operation order per cell —
//! so results are bit-compatible with the unfused reference path
//! (property-tested in `melissa`'s `proptest_server.rs`).

use rayon::prelude::*;

use melissa_stats::{DisjointSlices, FieldMinMax, FieldMoments, FieldThreshold};

use crate::ubiquitous::{update_tile_records, UbiquitousSobol};

/// One-sweep update of all per-timestep server statistics over a slab.
///
/// Borrows every accumulator of one timestep; [`apply`](Self::apply)
/// consumes the borrow after folding in one completed group.
pub struct FusedSlabUpdate<'a> {
    sobol: &'a mut UbiquitousSobol,
    moments: &'a mut FieldMoments,
    minmax: &'a mut FieldMinMax,
    thresholds: &'a mut [FieldThreshold],
}

impl<'a> FusedSlabUpdate<'a> {
    /// Binds the accumulators of one timestep.
    ///
    /// # Panics
    /// Panics if any accumulator covers a different number of cells than
    /// the Sobol' state.
    pub fn new(
        sobol: &'a mut UbiquitousSobol,
        moments: &'a mut FieldMoments,
        minmax: &'a mut FieldMinMax,
        thresholds: &'a mut [FieldThreshold],
    ) -> Self {
        let cells = sobol.cells();
        assert_eq!(moments.len(), cells, "moments cell-count mismatch");
        assert_eq!(minmax.len(), cells, "min/max cell-count mismatch");
        for t in thresholds.iter() {
            assert_eq!(t.len(), cells, "threshold cell-count mismatch");
        }
        Self {
            sobol,
            moments,
            minmax,
            thresholds,
        }
    }

    /// Folds one completed group's `p + 2` role fields into every bound
    /// accumulator in a single tile-parallel sweep.
    ///
    /// # Panics
    /// Panics if the number of fields is not `p + 2` or any field length
    /// differs from the slab size.
    pub fn apply(self, fields: &[&[f64]]) {
        let p = self.sobol.dim();
        let cells = self.sobol.cells();
        assert_eq!(fields.len(), p + 2, "expected p + 2 result fields");
        for f in fields {
            assert_eq!(f.len(), cells, "field length mismatch");
        }

        // Bump all sample counts up front; tile tasks then only touch
        // per-cell storage.  Sobol' sees one group; the auxiliary
        // statistics see the two i.i.d. samples Y^A and Y^B.
        let (n_group, stride, tile, sobol_state) = self.sobol.fused_parts_mut();
        let (n0, m_mean, m_m2, m_m3, m_m4) = self.moments.fused_parts_mut(2);
        let (mn, mx) = self.minmax.fused_parts_mut(2);
        // Threshold list length is runtime-configured; two pointers per
        // threshold is the only per-call heap use on the fused path.
        let thr: Vec<(f64, DisjointSlices<'_, u64>)> = self
            .thresholds
            .iter_mut()
            .map(|t| {
                let (threshold, exceeded) = t.fused_parts_mut(2);
                (threshold, DisjointSlices::new(exceeded))
            })
            .collect();

        let sobol_state = DisjointSlices::new(sobol_state);
        let m_mean = DisjointSlices::new(m_mean);
        let m_m2 = DisjointSlices::new(m_m2);
        let m_m3 = DisjointSlices::new(m_m3);
        let m_m4 = DisjointSlices::new(m_m4);
        let mn = DisjointSlices::new(mn);
        let mx = DisjointSlices::new(mx);

        // Welford/Pébay terms for the two auxiliary samples: the first
        // sample lands at count n0 + 1, the second at n0 + 2 — exactly as
        // two consecutive `FieldMoments::update` calls would.
        let n1 = (n0 + 1) as f64;
        let n2 = (n0 + 2) as f64;
        let nn_term1 = n1 * n1 - 3.0 * n1 + 3.0;
        let nn_term2 = n2 * n2 - 3.0 * n2 + 3.0;

        let n_tiles = cells.div_ceil(tile);
        let sobol_ref = &sobol_state;
        let thr_ref = &thr;
        let (m_mean, m_m2, m_m3, m_m4, mn, mx) = (&m_mean, &m_m2, &m_m3, &m_m4, &mn, &mx);
        (0..n_tiles).into_par_iter().for_each(move |t| {
            let c0 = t * tile;
            let c1 = (c0 + tile).min(cells);
            // SAFETY (all range_mut calls below): tile cell ranges are
            // pairwise disjoint across tasks.
            let recs = unsafe { sobol_ref.range_mut(c0 * stride..c1 * stride) };
            update_tile_records(recs, fields, c0, p, stride, n_group);

            let wa = &fields[0][c0..c1];
            let wb = &fields[1][c0..c1];
            let mean = unsafe { m_mean.range_mut(c0..c1) };
            let m2 = unsafe { m_m2.range_mut(c0..c1) };
            let m3 = unsafe { m_m3.range_mut(c0..c1) };
            let m4 = unsafe { m_m4.range_mut(c0..c1) };
            let mins = unsafe { mn.range_mut(c0..c1) };
            let maxs = unsafe { mx.range_mut(c0..c1) };
            for i in 0..wa.len() {
                moment_step(
                    &mut mean[i],
                    &mut m2[i],
                    &mut m3[i],
                    &mut m4[i],
                    wa[i],
                    n1,
                    nn_term1,
                );
                moment_step(
                    &mut mean[i],
                    &mut m2[i],
                    &mut m3[i],
                    &mut m4[i],
                    wb[i],
                    n2,
                    nn_term2,
                );
                mins[i] = mins[i].min(wa[i]).min(wb[i]);
                maxs[i] = maxs[i].max(wa[i]).max(wb[i]);
            }
            for (threshold, exceeded) in thr_ref {
                let counts = unsafe { exceeded.range_mut(c0..c1) };
                for i in 0..wa.len() {
                    counts[i] += (wa[i] > *threshold) as u64 + (wb[i] > *threshold) as u64;
                }
            }
        });
    }
}

/// One scalar Pébay moment update at post-increment count `n` — the exact
/// recurrence (and operation order) of `FieldMoments::update`.
#[inline]
fn moment_step(
    mean: &mut f64,
    m2: &mut f64,
    m3: &mut f64,
    m4: &mut f64,
    x: f64,
    n: f64,
    nn_term: f64,
) {
    let delta = x - *mean;
    let delta_n = delta / n;
    let delta_n2 = delta_n * delta_n;
    let term1 = delta * delta_n * (n - 1.0);
    *mean += delta_n;
    *m4 += term1 * delta_n2 * nn_term + 6.0 * delta_n2 * *m2 - 4.0 * delta_n * *m3;
    *m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * *m2;
    *m2 += term1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const P: usize = 3;

    fn random_fields(cells: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..P + 2)
            .map(|_| (0..cells).map(|_| rng.gen::<f64>() * 8.0 - 3.0).collect())
            .collect()
    }

    /// The fused sweep must be bit-identical to the unfused reference
    /// path: update_group + moments(A), moments(B) + minmax + thresholds.
    #[test]
    fn fused_is_bit_identical_to_reference_path() {
        // 300 cells spans multiple tiles at p = 3 (stride 16 → 128/tile).
        let cells = 300;
        let groups: Vec<Vec<Vec<f64>>> = (0..7).map(|g| random_fields(cells, 100 + g)).collect();

        let mut fused_sobol = UbiquitousSobol::new(P, cells);
        let mut fused_moments = FieldMoments::new(cells);
        let mut fused_minmax = FieldMinMax::new(cells);
        let mut fused_thresholds = vec![
            FieldThreshold::new(cells, 0.0),
            FieldThreshold::new(cells, 2.5),
        ];

        let mut ref_sobol = UbiquitousSobol::new(P, cells);
        let mut ref_moments = FieldMoments::new(cells);
        let mut ref_minmax = FieldMinMax::new(cells);
        let mut ref_thresholds = vec![
            FieldThreshold::new(cells, 0.0),
            FieldThreshold::new(cells, 2.5),
        ];

        for g in &groups {
            let refs: Vec<&[f64]> = g.iter().map(|f| f.as_slice()).collect();
            FusedSlabUpdate::new(
                &mut fused_sobol,
                &mut fused_moments,
                &mut fused_minmax,
                &mut fused_thresholds,
            )
            .apply(&refs);

            ref_sobol.update_group(&refs);
            for sample in refs.iter().take(2) {
                ref_moments.update(sample);
                ref_minmax.update(sample);
                for t in ref_thresholds.iter_mut() {
                    t.update(sample);
                }
            }
        }

        assert_eq!(fused_sobol, ref_sobol);
        assert_eq!(fused_moments, ref_moments);
        assert_eq!(fused_minmax, ref_minmax);
        assert_eq!(fused_thresholds, ref_thresholds);
    }

    #[test]
    fn fused_with_no_thresholds_is_fine() {
        let cells = 40;
        let fields = random_fields(cells, 7);
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        let mut sobol = UbiquitousSobol::new(P, cells);
        let mut moments = FieldMoments::new(cells);
        let mut minmax = FieldMinMax::new(cells);
        FusedSlabUpdate::new(&mut sobol, &mut moments, &mut minmax, &mut []).apply(&refs);
        assert_eq!(sobol.n_groups(), 1);
        assert_eq!(moments.count(), 2);
        assert_eq!(minmax.count(), 2);
    }

    #[test]
    #[should_panic(expected = "cell-count mismatch")]
    fn mismatched_accumulators_panic() {
        let mut sobol = UbiquitousSobol::new(P, 10);
        let mut moments = FieldMoments::new(9);
        let mut minmax = FieldMinMax::new(10);
        let _ = FusedSlabUpdate::new(&mut sobol, &mut moments, &mut minmax, &mut []);
    }
}
