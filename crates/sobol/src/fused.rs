//! Fused single-sweep server ingest kernel.
//!
//! When a `(group, timestep)` assembly completes, Melissa Server must fold
//! the `p + 2` role fields into **five** statistics families: the
//! ubiquitous Sobol' state (all roles), and the field moments, min/max
//! envelope, threshold-exceedance counters and Robbins–Monro quantile
//! estimates (the i.i.d. `Y^A`/`Y^B` samples only, paper Section 4.1).
//! Doing that as independent Rayon sweeps re-reads the fields and re-pays
//! the parallel dispatch per statistic; [`FusedSlabUpdate`] folds
//! everything in **one** tile-parallel pass: each tile task updates its
//! slice of every accumulator while the incoming field stripe is hot in
//! L1.
//!
//! The fused path is arithmetic-for-arithmetic identical to calling
//! [`UbiquitousSobol::update_group`] followed by the individual
//! `FieldMoments::update(Y^A)`, `update(Y^B)` (and likewise min/max,
//! thresholds and quantiles) — same scalar recurrences, same operation
//! order per cell — so results are bit-compatible with the unfused
//! reference path (property-tested in `melissa`'s `proptest_server.rs`).

use rayon::prelude::*;

use melissa_stats::quantiles::{rm_step_scale, update_tile_quantiles_pair};
use melissa_stats::{
    tile_cells, DisjointSlices, FieldMinMax, FieldMoments, FieldQuantiles, FieldThreshold,
};

use crate::ubiquitous::{update_tile_records, UbiquitousSobol};

/// One-sweep update of all per-timestep server statistics over a slab.
///
/// Borrows every accumulator of one timestep; [`apply`](Self::apply)
/// consumes the borrow after folding in one completed group.
pub struct FusedSlabUpdate<'a> {
    sobol: &'a mut UbiquitousSobol,
    moments: &'a mut FieldMoments,
    minmax: &'a mut FieldMinMax,
    thresholds: &'a mut [FieldThreshold],
    quantiles: Option<&'a mut FieldQuantiles>,
}

impl<'a> FusedSlabUpdate<'a> {
    /// Binds the accumulators of one timestep (`quantiles` is optional:
    /// order statistics are only tracked when configured).
    ///
    /// # Panics
    /// Panics if any accumulator covers a different number of cells than
    /// the Sobol' state.
    pub fn new(
        sobol: &'a mut UbiquitousSobol,
        moments: &'a mut FieldMoments,
        minmax: &'a mut FieldMinMax,
        thresholds: &'a mut [FieldThreshold],
        quantiles: Option<&'a mut FieldQuantiles>,
    ) -> Self {
        let cells = sobol.cells();
        assert_eq!(moments.len(), cells, "moments cell-count mismatch");
        assert_eq!(minmax.len(), cells, "min/max cell-count mismatch");
        for t in thresholds.iter() {
            assert_eq!(t.len(), cells, "threshold cell-count mismatch");
        }
        if let Some(q) = &quantiles {
            assert_eq!(q.len(), cells, "quantile cell-count mismatch");
        }
        Self {
            sobol,
            moments,
            minmax,
            thresholds,
            quantiles,
        }
    }

    /// Folds one completed group's `p + 2` role fields into every bound
    /// accumulator in a single tile-parallel sweep.
    ///
    /// # Panics
    /// Panics if the number of fields is not `p + 2` or any field length
    /// differs from the slab size.
    pub fn apply(self, fields: &[&[f64]]) {
        let p = self.sobol.dim();
        let cells = self.sobol.cells();
        assert_eq!(fields.len(), p + 2, "expected p + 2 result fields");
        for f in fields {
            assert_eq!(f.len(), cells, "field length mismatch");
        }

        // Bump all sample counts up front; tile tasks then only touch
        // per-cell storage.  Sobol' sees one group; the auxiliary
        // statistics see the two i.i.d. samples Y^A and Y^B.
        let (n_group, stride, sobol_state) = self.sobol.fused_parts_mut();
        let (n0, m_mean, m_m2, m_m3, m_m4) = self.moments.fused_parts_mut(2);
        let (mn, mx) = self.minmax.fused_parts_mut(2);
        // Quantile records fold Y^A at count n0 + 1 and Y^B at n0 + 2 —
        // exactly as two consecutive `FieldQuantiles::update` calls would.
        let quant = self.quantiles.map(|q| {
            let (qn0, gamma, qstride, probs, qstate) = q.fused_parts_mut(2);
            let scale_a = rm_step_scale(qn0 + 1, gamma);
            let scale_b = rm_step_scale(qn0 + 2, gamma);
            (
                qn0 == 0,
                scale_a,
                scale_b,
                qstride,
                probs,
                DisjointSlices::new(qstate),
            )
        });
        // Threshold list length is runtime-configured; two pointers per
        // threshold is the only per-call heap use on the fused path.
        let thr: Vec<(f64, DisjointSlices<'_, u64>)> = self
            .thresholds
            .iter_mut()
            .map(|t| {
                let (threshold, exceeded) = t.fused_parts_mut(2);
                (threshold, DisjointSlices::new(exceeded))
            })
            .collect();

        let sobol_state = DisjointSlices::new(sobol_state);
        let m_mean = DisjointSlices::new(m_mean);
        let m_m2 = DisjointSlices::new(m_m2);
        let m_m3 = DisjointSlices::new(m_m3);
        let m_m4 = DisjointSlices::new(m_m4);
        let mn = DisjointSlices::new(mn);
        let mx = DisjointSlices::new(mx);

        // Welford/Pébay terms for the two auxiliary samples: the first
        // sample lands at count n0 + 1, the second at n0 + 2 — exactly as
        // two consecutive `FieldMoments::update` calls would.
        let n1 = (n0 + 1) as f64;
        let n2 = (n0 + 2) as f64;
        let nn_term1 = n1 * n1 - 3.0 * n1 + 3.0;
        let nn_term2 = n2 * n2 - 3.0 * n2 + 3.0;

        // The fused sweep touches EVERY family's record for a cell while
        // its field stripe is hot, so the tile must be sized to the
        // *combined* per-cell state — Sobol' (4 + 4p) + moments (4) +
        // min/max (2) + one u64 counter per threshold + the quantile
        // record — not to the Sobol' stride alone.  Sizing by Sobol' only
        // overflows the L1 budget once quantiles are enabled and turns
        // the whole sweep L2-bound.
        let fused_doubles_per_cell = stride
            + 4
            + 2
            + thr.len()
            + quant
                .as_ref()
                .map_or(0, |(_, _, _, qstride, _, _)| *qstride);
        let tile = tile_cells(fused_doubles_per_cell);
        let n_tiles = cells.div_ceil(tile);
        let sobol_ref = &sobol_state;
        let thr_ref = &thr;
        let quant_ref = &quant;
        let (m_mean, m_m2, m_m3, m_m4, mn, mx) = (&m_mean, &m_m2, &m_m3, &m_m4, &mn, &mx);
        (0..n_tiles).into_par_iter().for_each(move |t| {
            let c0 = t * tile;
            let c1 = (c0 + tile).min(cells);
            // SAFETY (all range_mut calls below): tile cell ranges are
            // pairwise disjoint across tasks.
            let recs = unsafe { sobol_ref.range_mut(c0 * stride..c1 * stride) };
            update_tile_records(recs, fields, c0, p, stride, n_group);

            let wa = &fields[0][c0..c1];
            let wb = &fields[1][c0..c1];
            let mean = unsafe { m_mean.range_mut(c0..c1) };
            let m2 = unsafe { m_m2.range_mut(c0..c1) };
            let m3 = unsafe { m_m3.range_mut(c0..c1) };
            let m4 = unsafe { m_m4.range_mut(c0..c1) };
            let mins = unsafe { mn.range_mut(c0..c1) };
            let maxs = unsafe { mx.range_mut(c0..c1) };
            for i in 0..wa.len() {
                moment_step(
                    &mut mean[i],
                    &mut m2[i],
                    &mut m3[i],
                    &mut m4[i],
                    wa[i],
                    n1,
                    nn_term1,
                );
                moment_step(
                    &mut mean[i],
                    &mut m2[i],
                    &mut m3[i],
                    &mut m4[i],
                    wb[i],
                    n2,
                    nn_term2,
                );
            }
            match quant_ref {
                None => {
                    for i in 0..wa.len() {
                        mins[i] = mins[i].min(wa[i]).min(wb[i]);
                        maxs[i] = maxs[i].max(wa[i]).max(wb[i]);
                    }
                }
                // The quantile pair kernel owns the envelope update: the
                // Robbins–Monro step for Y^A must see the envelope folded
                // with Y^A but not yet Y^B (the sequential reference
                // order); the final envelope values are identical.
                Some((first, scale_a, scale_b, qstride, probs, qstate)) => {
                    let qrecs = unsafe { qstate.range_mut(c0 * qstride..c1 * qstride) };
                    update_tile_quantiles_pair(
                        qrecs, wa, wb, mins, maxs, probs, *first, *scale_a, *scale_b,
                    );
                }
            }
            for (threshold, exceeded) in thr_ref {
                let counts = unsafe { exceeded.range_mut(c0..c1) };
                for i in 0..wa.len() {
                    counts[i] += (wa[i] > *threshold) as u64 + (wb[i] > *threshold) as u64;
                }
            }
        });
    }
}

/// One scalar Pébay moment update at post-increment count `n` — the exact
/// recurrence (and operation order) of `FieldMoments::update`.
#[inline]
fn moment_step(
    mean: &mut f64,
    m2: &mut f64,
    m3: &mut f64,
    m4: &mut f64,
    x: f64,
    n: f64,
    nn_term: f64,
) {
    let delta = x - *mean;
    let delta_n = delta / n;
    let delta_n2 = delta_n * delta_n;
    let term1 = delta * delta_n * (n - 1.0);
    *mean += delta_n;
    *m4 += term1 * delta_n2 * nn_term + 6.0 * delta_n2 * *m2 - 4.0 * delta_n * *m3;
    *m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * *m2;
    *m2 += term1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use melissa_stats::FieldQuantiles;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const P: usize = 3;

    fn random_fields(cells: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..P + 2)
            .map(|_| (0..cells).map(|_| rng.gen::<f64>() * 8.0 - 3.0).collect())
            .collect()
    }

    /// The fused sweep must be bit-identical to the unfused reference
    /// path: update_group + moments(A), moments(B) + minmax + thresholds
    /// + quantiles.
    #[test]
    fn fused_is_bit_identical_to_reference_path() {
        // 300 cells spans multiple tiles at p = 3 (stride 16 → 128/tile).
        let cells = 300;
        let groups: Vec<Vec<Vec<f64>>> = (0..7).map(|g| random_fields(cells, 100 + g)).collect();
        let probs = [0.05, 0.5, 0.95];

        let mut fused_sobol = UbiquitousSobol::new(P, cells);
        let mut fused_moments = FieldMoments::new(cells);
        let mut fused_minmax = FieldMinMax::new(cells);
        let mut fused_thresholds = vec![
            FieldThreshold::new(cells, 0.0),
            FieldThreshold::new(cells, 2.5),
        ];
        let mut fused_quantiles = FieldQuantiles::new(cells, &probs);

        let mut ref_sobol = UbiquitousSobol::new(P, cells);
        let mut ref_moments = FieldMoments::new(cells);
        let mut ref_minmax = FieldMinMax::new(cells);
        let mut ref_thresholds = vec![
            FieldThreshold::new(cells, 0.0),
            FieldThreshold::new(cells, 2.5),
        ];
        let mut ref_quantiles = FieldQuantiles::new(cells, &probs);

        for g in &groups {
            let refs: Vec<&[f64]> = g.iter().map(|f| f.as_slice()).collect();
            FusedSlabUpdate::new(
                &mut fused_sobol,
                &mut fused_moments,
                &mut fused_minmax,
                &mut fused_thresholds,
                Some(&mut fused_quantiles),
            )
            .apply(&refs);

            ref_sobol.update_group(&refs);
            for sample in refs.iter().take(2) {
                ref_moments.update(sample);
                ref_minmax.update(sample);
                for t in ref_thresholds.iter_mut() {
                    t.update(sample);
                }
                // Quantiles borrow the (already updated) envelope.
                ref_quantiles.update(sample, &ref_minmax);
            }
        }

        assert_eq!(fused_sobol, ref_sobol);
        assert_eq!(fused_moments, ref_moments);
        assert_eq!(fused_minmax, ref_minmax);
        assert_eq!(fused_thresholds, ref_thresholds);
        assert_eq!(fused_quantiles, ref_quantiles);
    }

    #[test]
    fn fused_with_no_thresholds_or_quantiles_is_fine() {
        let cells = 40;
        let fields = random_fields(cells, 7);
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        let mut sobol = UbiquitousSobol::new(P, cells);
        let mut moments = FieldMoments::new(cells);
        let mut minmax = FieldMinMax::new(cells);
        FusedSlabUpdate::new(&mut sobol, &mut moments, &mut minmax, &mut [], None).apply(&refs);
        assert_eq!(sobol.n_groups(), 1);
        assert_eq!(moments.count(), 2);
        assert_eq!(minmax.count(), 2);
    }

    #[test]
    fn fused_quantiles_see_two_samples_per_group() {
        let cells = 16;
        let fields = random_fields(cells, 21);
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        let mut sobol = UbiquitousSobol::new(P, cells);
        let mut moments = FieldMoments::new(cells);
        let mut minmax = FieldMinMax::new(cells);
        let mut quantiles = FieldQuantiles::new(cells, &[0.5]);
        FusedSlabUpdate::new(
            &mut sobol,
            &mut moments,
            &mut minmax,
            &mut [],
            Some(&mut quantiles),
        )
        .apply(&refs);
        assert_eq!(quantiles.count(), 2);
        // After Y^A (warm start) and Y^B, the median estimate has taken
        // exactly one step from Y^A, and the envelope family (updated by
        // the quantile pair kernel in the fused sweep) is their min/max.
        for (c, (&ya, &yb)) in fields[0].iter().zip(&fields[1]).enumerate() {
            assert_eq!(minmax.min()[c], ya.min(yb), "cell {c} min");
            assert_eq!(minmax.max()[c], ya.max(yb), "cell {c} max");
            assert_ne!(quantiles.quantile_at(c, 0), ya, "cell {c} q");
        }
    }

    /// The legacy-checkpoint upgrade path: a restored state whose min/max
    /// envelope carries history gets cold quantiles retrofitted
    /// (`ensure_quantiles`).  The first fused apply then runs the quantile
    /// warm start against the populated envelope — which must still cover
    /// the pre-restore extremes afterwards.
    #[test]
    fn fused_warm_start_preserves_restored_envelope() {
        let cells = 40;
        let mut minmax = FieldMinMax::new(cells);
        minmax.update(&vec![-100.0; cells]);
        minmax.update(&vec![200.0; cells]);
        let mut sobol = UbiquitousSobol::new(P, cells);
        let mut moments = FieldMoments::new(cells);
        let mut quantiles = FieldQuantiles::new(cells, &[0.05, 0.5, 0.95]);
        let fields = random_fields(cells, 33); // samples lie in (-3, 5)
        let refs: Vec<&[f64]> = fields.iter().map(|f| f.as_slice()).collect();
        FusedSlabUpdate::new(
            &mut sobol,
            &mut moments,
            &mut minmax,
            &mut [],
            Some(&mut quantiles),
        )
        .apply(&refs);
        assert_eq!(minmax.count(), 4);
        assert_eq!(quantiles.count(), 2);
        for c in 0..cells {
            assert_eq!(minmax.min()[c], -100.0, "cell {c} lost pre-restore min");
            assert_eq!(minmax.max()[c], 200.0, "cell {c} lost pre-restore max");
        }
    }

    #[test]
    #[should_panic(expected = "cell-count mismatch")]
    fn mismatched_accumulators_panic() {
        let mut sobol = UbiquitousSobol::new(P, 10);
        let mut moments = FieldMoments::new(9);
        let mut minmax = FieldMinMax::new(10);
        let _ = FusedSlabUpdate::new(&mut sobol, &mut moments, &mut minmax, &mut [], None);
    }

    #[test]
    #[should_panic(expected = "quantile cell-count mismatch")]
    fn mismatched_quantiles_panic() {
        let mut sobol = UbiquitousSobol::new(P, 10);
        let mut moments = FieldMoments::new(10);
        let mut minmax = FieldMinMax::new(10);
        let mut quantiles = FieldQuantiles::new(9, &[0.5]);
        let _ = FusedSlabUpdate::new(
            &mut sobol,
            &mut moments,
            &mut minmax,
            &mut [],
            Some(&mut quantiles),
        );
    }
}
