//! Input-parameter distributions and the study parameter space.
//!
//! Global sensitivity analysis treats the `p` variable input parameters as
//! independent random variables with user-chosen marginal laws (paper
//! Section 2.1).  The launcher samples this space to build the pick-freeze
//! design matrices.

use rand::Rng;

/// Marginal probability law of one input parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound (must be ≥ `lo`).
        hi: f64,
    },
    /// Normal with given mean and standard deviation (sampled by
    /// Box–Muller so only a `rand` uniform source is required).
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be ≥ 0).
        std_dev: f64,
    },
    /// Log-uniform on `[lo, hi]` with `0 < lo ≤ hi` (decades equally likely).
    LogUniform {
        /// Lower bound (> 0).
        lo: f64,
        /// Upper bound (≥ `lo`).
        hi: f64,
    },
}

impl Distribution {
    /// Draws one sample from the law.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Uniform { lo, hi } => lo + (hi - lo) * rng.gen::<f64>(),
            Distribution::Normal { mean, std_dev } => {
                // Box–Muller transform.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                mean + std_dev * z
            }
            Distribution::LogUniform { lo, hi } => {
                let (llo, lhi) = (lo.ln(), hi.ln());
                (llo + (lhi - llo) * rng.gen::<f64>()).exp()
            }
        }
    }

    /// Validates the law's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Distribution::Uniform { lo, hi } => {
                // NaN bounds must fail too, hence the explicit checks.
                if lo.is_nan() || hi.is_nan() || lo > hi {
                    return Err(format!("uniform bounds inverted: [{lo}, {hi}]"));
                }
            }
            Distribution::Normal { std_dev, .. } => {
                if std_dev.is_nan() || std_dev < 0.0 {
                    return Err(format!("negative std dev: {std_dev}"));
                }
            }
            Distribution::LogUniform { lo, hi } => {
                if lo.is_nan() || hi.is_nan() || lo <= 0.0 || lo > hi {
                    return Err(format!(
                        "log-uniform requires 0 < lo <= hi, got [{lo}, {hi}]"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One named input parameter with its marginal law.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Human-readable name (used in reports and output files).
    pub name: String,
    /// Marginal probability law.
    pub distribution: Distribution,
}

impl Parameter {
    /// Convenience constructor for a uniform parameter.
    pub fn uniform(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        Self {
            name: name.into(),
            distribution: Distribution::Uniform { lo, hi },
        }
    }

    /// Convenience constructor for a normal parameter.
    pub fn normal(name: impl Into<String>, mean: f64, std_dev: f64) -> Self {
        Self {
            name: name.into(),
            distribution: Distribution::Normal { mean, std_dev },
        }
    }
}

/// The ordered collection of the study's variable input parameters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParameterSpace {
    params: Vec<Parameter>,
}

impl ParameterSpace {
    /// Creates a parameter space from an ordered parameter list.
    ///
    /// # Panics
    /// Panics if any distribution is invalid.
    pub fn new(params: Vec<Parameter>) -> Self {
        for p in &params {
            if let Err(e) = p.distribution.validate() {
                panic!("invalid distribution for parameter '{}': {e}", p.name);
            }
        }
        Self { params }
    }

    /// Number of variable parameters `p`.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters, in study order.
    pub fn parameters(&self) -> &[Parameter] {
        &self.params
    }

    /// Name of parameter `k`.
    pub fn name(&self, k: usize) -> &str {
        &self.params[k].name
    }

    /// Draws one complete parameter-set row (one value per parameter).
    pub fn sample_row<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| p.distribution.sample(rng))
            .collect()
    }
}

impl std::iter::FromIterator<Parameter> for ParameterSpace {
    fn from_iter<I: IntoIterator<Item = Parameter>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Distribution::Uniform { lo: -2.0, hi: 3.0 };
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..=3.0).contains(&x));
        }
    }

    #[test]
    fn normal_samples_have_right_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Distribution::Normal {
            mean: 5.0,
            std_dev: 2.0,
        };
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_uniform_stays_positive_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Distribution::LogUniform { lo: 1e-3, hi: 1e3 };
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((1e-3..=1e3).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid distribution")]
    fn invalid_bounds_panic() {
        ParameterSpace::new(vec![Parameter::uniform("bad", 1.0, 0.0)]);
    }

    #[test]
    fn sample_row_has_one_value_per_parameter() {
        let space = ParameterSpace::new(vec![
            Parameter::uniform("a", 0.0, 1.0),
            Parameter::normal("b", 0.0, 1.0),
            Parameter::uniform("c", -1.0, 1.0),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(space.sample_row(&mut rng).len(), 3);
        assert_eq!(space.dim(), 3);
        assert_eq!(space.name(1), "b");
    }
}
