//! Analytic sensitivity-analysis benchmark functions.
//!
//! These standard test functions have closed-form Sobol' indices, which the
//! convergence experiments (paper Section 3.4) and the estimator ablation
//! use as ground truth.

use crate::param::{Parameter, ParameterSpace};

/// A deterministic black-box model `y = f(x_1 … x_p)` with known Sobol'
/// indices.
pub trait TestFunction {
    /// Number of input parameters.
    fn dim(&self) -> usize;
    /// The input parameter space (marginal laws).
    fn parameter_space(&self) -> ParameterSpace;
    /// Evaluates the model.
    fn eval(&self, x: &[f64]) -> f64;
    /// Closed-form first-order indices.
    fn analytic_first_order(&self) -> Vec<f64>;
    /// Closed-form total indices.
    fn analytic_total_order(&self) -> Vec<f64>;
    /// Closed-form output variance.
    fn analytic_variance(&self) -> f64;
}

/// Ishigami function `f(x) = sin x₁ + a sin² x₂ + b x₃⁴ sin x₁` on
/// `[−π, π]³` — the classic non-additive, non-monotonic SA benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ishigami {
    /// Coefficient of the `sin² x₂` term (classically 7).
    pub a: f64,
    /// Coefficient of the `x₃⁴ sin x₁` interaction term (classically 0.1).
    pub b: f64,
}

impl Default for Ishigami {
    fn default() -> Self {
        Self { a: 7.0, b: 0.1 }
    }
}

impl TestFunction for Ishigami {
    fn dim(&self) -> usize {
        3
    }

    fn parameter_space(&self) -> ParameterSpace {
        use std::f64::consts::PI;
        ParameterSpace::new(vec![
            Parameter::uniform("x1", -PI, PI),
            Parameter::uniform("x2", -PI, PI),
            Parameter::uniform("x3", -PI, PI),
        ])
    }

    fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), 3, "Ishigami takes 3 inputs");
        x[0].sin() + self.a * x[1].sin().powi(2) + self.b * x[2].powi(4) * x[0].sin()
    }

    fn analytic_variance(&self) -> f64 {
        use std::f64::consts::PI;
        let (a, b) = (self.a, self.b);
        a * a / 8.0 + b * PI.powi(4) / 5.0 + b * b * PI.powi(8) / 18.0 + 0.5
    }

    fn analytic_first_order(&self) -> Vec<f64> {
        use std::f64::consts::PI;
        let (a, b) = (self.a, self.b);
        let v = self.analytic_variance();
        let v1 = 0.5 * (1.0 + b * PI.powi(4) / 5.0).powi(2);
        let v2 = a * a / 8.0;
        vec![v1 / v, v2 / v, 0.0]
    }

    fn analytic_total_order(&self) -> Vec<f64> {
        use std::f64::consts::PI;
        let (a, b) = (self.a, self.b);
        let v = self.analytic_variance();
        let v1 = 0.5 * (1.0 + b * PI.powi(4) / 5.0).powi(2);
        let v2 = a * a / 8.0;
        // Only the x1–x3 interaction is non-zero.
        let v13 = 8.0 * b * b * PI.powi(8) / 225.0;
        vec![(v1 + v13) / v, v2 / v, v13 / v]
    }
}

/// Sobol' g-function `f(x) = Π_k (|4x_k − 2| + a_k)/(1 + a_k)` on `[0,1]^p`.
///
/// Smaller `a_k` ⇒ more influential parameter.  Fully multiplicative, so
/// every interaction order is active — a stress test for total indices.
#[derive(Debug, Clone, PartialEq)]
pub struct GFunction {
    /// Importance coefficients `a_k ≥ 0` (one per parameter).
    pub a: Vec<f64>,
}

impl GFunction {
    /// The common benchmark configuration `a = [0, 1, 4.5, 9, 99, 99]`.
    pub fn standard6() -> Self {
        Self {
            a: vec![0.0, 1.0, 4.5, 9.0, 99.0, 99.0],
        }
    }

    fn partial_variances(&self) -> Vec<f64> {
        self.a
            .iter()
            .map(|&ak| 1.0 / (3.0 * (1.0 + ak).powi(2)))
            .collect()
    }
}

impl TestFunction for GFunction {
    fn dim(&self) -> usize {
        self.a.len()
    }

    fn parameter_space(&self) -> ParameterSpace {
        (0..self.dim())
            .map(|k| Parameter::uniform(format!("x{}", k + 1), 0.0, 1.0))
            .collect()
    }

    fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "g-function input dimension mismatch");
        x.iter()
            .zip(&self.a)
            .map(|(&xi, &ak)| ((4.0 * xi - 2.0).abs() + ak) / (1.0 + ak))
            .product()
    }

    fn analytic_variance(&self) -> f64 {
        self.partial_variances()
            .iter()
            .map(|v| 1.0 + v)
            .product::<f64>()
            - 1.0
    }

    fn analytic_first_order(&self) -> Vec<f64> {
        let v = self.analytic_variance();
        self.partial_variances().iter().map(|vk| vk / v).collect()
    }

    fn analytic_total_order(&self) -> Vec<f64> {
        let vs = self.partial_variances();
        let v = self.analytic_variance();
        (0..self.dim())
            .map(|k| {
                let prod_others: f64 = vs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != k)
                    .map(|(_, vj)| 1.0 + vj)
                    .product();
                vs[k] * prod_others / v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ishigami_analytic_values_match_literature() {
        let f = Ishigami::default();
        // Literature values for a=7, b=0.1.
        let s = f.analytic_first_order();
        assert!((s[0] - 0.3139).abs() < 1e-3, "S1 {}", s[0]);
        assert!((s[1] - 0.4424).abs() < 1e-3, "S2 {}", s[1]);
        assert_eq!(s[2], 0.0);
        let st = f.analytic_total_order();
        assert!((st[0] - 0.5576).abs() < 1e-3, "ST1 {}", st[0]);
        assert!((st[1] - 0.4424).abs() < 1e-3, "ST2 {}", st[1]);
        assert!((st[2] - 0.2437).abs() < 1e-3, "ST3 {}", st[2]);
        assert!((f.analytic_variance() - 13.8446).abs() < 1e-3);
    }

    #[test]
    fn ishigami_monte_carlo_variance_matches_analytic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let f = Ishigami::default();
        let space = f.parameter_space();
        let mut rng = StdRng::seed_from_u64(3);
        let ys: Vec<f64> = (0..60_000)
            .map(|_| f.eval(&space.sample_row(&mut rng)))
            .collect();
        let var = melissa_stats::batch::sample_variance(&ys);
        assert!(
            (var - f.analytic_variance()).abs() / f.analytic_variance() < 0.03,
            "MC var {var} vs analytic {}",
            f.analytic_variance()
        );
    }

    #[test]
    fn gfunction_indices_sum_properties() {
        let f = GFunction::standard6();
        let s = f.analytic_first_order();
        let st = f.analytic_total_order();
        // First-order sum below 1; totals at least first-orders.
        assert!(s.iter().sum::<f64>() < 1.0);
        for k in 0..6 {
            assert!(st[k] >= s[k] - 1e-12);
        }
        // Ordering: smaller a_k more influential.
        assert!(s[0] > s[1] && s[1] > s[2] && s[2] > s[3] && s[3] > s[4]);
    }

    #[test]
    fn gfunction_monte_carlo_variance_matches_analytic() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let f = GFunction::standard6();
        let space = f.parameter_space();
        let mut rng = StdRng::seed_from_u64(9);
        let ys: Vec<f64> = (0..80_000)
            .map(|_| f.eval(&space.sample_row(&mut rng)))
            .collect();
        let var = melissa_stats::batch::sample_variance(&ys);
        assert!(
            (var - f.analytic_variance()).abs() / f.analytic_variance() < 0.05,
            "MC var {var} vs analytic {}",
            f.analytic_variance()
        );
    }

    #[test]
    fn gfunction_mean_is_one() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let f = GFunction::standard6();
        let space = f.parameter_space();
        let mut rng = StdRng::seed_from_u64(10);
        let mean: f64 = (0..50_000)
            .map(|_| f.eval(&space.sample_row(&mut rng)))
            .sum::<f64>()
            / 50_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
