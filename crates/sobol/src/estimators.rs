//! Batch (two-pass) Sobol' estimators.
//!
//! These are the classical estimators that require the full output vectors
//! `Y^A`, `Y^B`, `Y^{C^k}` to be stored — what the paper's *classical
//! postmortem* workflow computes after reading the ensemble back from disk.
//! They serve as validation references for the iterative implementation and
//! as baselines for the estimator-stability ablation
//! (`benches/ablation_estimators.rs`; the paper selects Martinez for its
//! numerical stability and iterative confidence interval, citing Baudin et
//! al. 2016).
//!
//! Convention: `C^k` is matrix `A` with column `k` replaced from `B`, hence
//! `Y^B` and `Y^{C^k}` share *only* coordinate `k` (⇒ their covariance
//! estimates the first-order partial variance `V_k`), while `Y^A` and
//! `Y^{C^k}` share all coordinates *except* `k` (⇒ their covariance
//! estimates `V_{∼k}` and yields the total index).

use melissa_stats::batch;

/// Martinez first-order estimator: `S_k = ρ(Y^B, Y^{C^k})` (paper Eq. 5).
pub fn martinez_first_order(yb: &[f64], yck: &[f64]) -> f64 {
    batch::correlation(yb, yck)
}

/// Martinez total-order estimator: `ST_k = 1 − ρ(Y^A, Y^{C^k})`
/// (paper Eq. 6).
pub fn martinez_total_order(ya: &[f64], yck: &[f64]) -> f64 {
    1.0 - batch::correlation(ya, yck)
}

/// Saltelli (2010) first-order estimator:
/// `S_k = (1/n) Σ Y^B_i (Y^{C^k}_i − Y^A_i) / V(Y)`.
pub fn saltelli_first_order(ya: &[f64], yb: &[f64], yck: &[f64]) -> f64 {
    let n = ya.len();
    assert!(
        n >= 2 && yb.len() == n && yck.len() == n,
        "need n ≥ 2 equal-length samples"
    );
    let var = pooled_variance(ya, yb);
    if var <= 0.0 {
        return 0.0;
    }
    let vk = ya
        .iter()
        .zip(yb)
        .zip(yck)
        .map(|((&a, &b), &c)| b * (c - a))
        .sum::<f64>()
        / n as f64;
    vk / var
}

/// Jansen (1999) total-order estimator:
/// `ST_k = (1/2n) Σ (Y^A_i − Y^{C^k}_i)² / V(Y)`.
pub fn jansen_total_order(ya: &[f64], yb: &[f64], yck: &[f64]) -> f64 {
    let n = ya.len();
    assert!(
        n >= 2 && yb.len() == n && yck.len() == n,
        "need n ≥ 2 equal-length samples"
    );
    let var = pooled_variance(ya, yb);
    if var <= 0.0 {
        return 0.0;
    }
    let half_mean_sq = ya
        .iter()
        .zip(yck)
        .map(|(&a, &c)| (a - c) * (a - c))
        .sum::<f64>()
        / (2.0 * n as f64);
    half_mean_sq / var
}

/// Jansen (1999) first-order estimator:
/// `S_k = 1 − (1/2n) Σ (Y^B_i − Y^{C^k}_i)² / V(Y)`.
pub fn jansen_first_order(ya: &[f64], yb: &[f64], yck: &[f64]) -> f64 {
    let n = ya.len();
    assert!(
        n >= 2 && yb.len() == n && yck.len() == n,
        "need n ≥ 2 equal-length samples"
    );
    let var = pooled_variance(ya, yb);
    if var <= 0.0 {
        return 0.0;
    }
    let half_mean_sq = yb
        .iter()
        .zip(yck)
        .map(|(&b, &c)| (b - c) * (b - c))
        .sum::<f64>()
        / (2.0 * n as f64);
    1.0 - half_mean_sq / var
}

/// Original Sobol' (1993) first-order estimator:
/// `S_k = ((1/n) Σ Y^B_i Y^{C^k}_i − μ²) / V(Y)` — known to be numerically
/// fragile when `μ² ≫ V(Y)` (kept as the negative control of the stability
/// ablation).
pub fn sobol1993_first_order(ya: &[f64], yb: &[f64], yck: &[f64]) -> f64 {
    let n = ya.len();
    assert!(
        n >= 2 && yb.len() == n && yck.len() == n,
        "need n ≥ 2 equal-length samples"
    );
    let var = pooled_variance(ya, yb);
    if var <= 0.0 {
        return 0.0;
    }
    let mean = pooled_mean(ya, yb);
    let raw = yb.iter().zip(yck).map(|(&b, &c)| b * c).sum::<f64>() / n as f64;
    (raw - mean * mean) / var
}

/// Pooled mean over the `Y^A` and `Y^B` samples (the `2n` independent runs).
pub fn pooled_mean(ya: &[f64], yb: &[f64]) -> f64 {
    (batch::mean(ya) * ya.len() as f64 + batch::mean(yb) * yb.len() as f64)
        / (ya.len() + yb.len()) as f64
}

/// Pooled (population) variance over the `Y^A` and `Y^B` samples.
pub fn pooled_variance(ya: &[f64], yb: &[f64]) -> f64 {
    let m = pooled_mean(ya, yb);
    let ss: f64 = ya.iter().chain(yb).map(|&y| (y - m) * (y - m)).sum();
    ss / (ya.len() + yb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::PickFreeze;
    use crate::testfn::{Ishigami, TestFunction};

    /// Evaluates a test function over a design, returning (ya, yb, yc[k]).
    fn evaluate(f: &impl TestFunction, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
        let design = PickFreeze::generate(n, &f.parameter_space(), seed);
        let p = f.dim();
        let mut ya = Vec::with_capacity(n);
        let mut yb = Vec::with_capacity(n);
        let mut yc = vec![Vec::with_capacity(n); p];
        for g in design.groups() {
            let ys: Vec<f64> = g.rows().iter().map(|r| f.eval(r)).collect();
            ya.push(ys[0]);
            yb.push(ys[1]);
            for k in 0..p {
                yc[k].push(ys[2 + k]);
            }
        }
        (ya, yb, yc)
    }

    #[test]
    fn all_first_order_estimators_agree_on_ishigami() {
        let f = Ishigami::default();
        let (ya, yb, yc) = evaluate(&f, 8000, 31);
        let s_ref = f.analytic_first_order();
        for k in 0..3 {
            let martinez = martinez_first_order(&yb, &yc[k]);
            let saltelli = saltelli_first_order(&ya, &yb, &yc[k]);
            let jansen = jansen_first_order(&ya, &yb, &yc[k]);
            for (name, est) in [
                ("martinez", martinez),
                ("saltelli", saltelli),
                ("jansen", jansen),
            ] {
                assert!(
                    (est - s_ref[k]).abs() < 0.06,
                    "{name} S_{k}: {est} vs analytic {}",
                    s_ref[k]
                );
            }
        }
    }

    #[test]
    fn total_order_estimators_agree_on_ishigami() {
        let f = Ishigami::default();
        let (ya, _yb, yc) = evaluate(&f, 8000, 37);
        let st_ref = f.analytic_total_order();
        for k in 0..3 {
            let martinez = martinez_total_order(&ya, &yc[k]);
            let jansen = jansen_total_order(&ya, &_yb, &yc[k]);
            assert!(
                (martinez - st_ref[k]).abs() < 0.06,
                "martinez ST_{k}: {martinez}"
            );
            assert!((jansen - st_ref[k]).abs() < 0.06, "jansen ST_{k}: {jansen}");
        }
    }

    #[test]
    fn martinez_is_stable_under_large_offset_sobol1993_is_not() {
        // Shifting the output by a large constant must not change Sobol'
        // indices.  Martinez (correlation-based) is immune; the 1993 raw
        // estimator loses precision.  This is the paper's stated reason for
        // choosing Martinez.
        let f = Ishigami::default();
        let (ya, yb, yc) = evaluate(&f, 4000, 41);
        let offset = 1e7;
        let ya_s: Vec<f64> = ya.iter().map(|y| y + offset).collect();
        let yb_s: Vec<f64> = yb.iter().map(|y| y + offset).collect();
        let yc0_s: Vec<f64> = yc[0].iter().map(|y| y + offset).collect();

        let m_plain = martinez_first_order(&yb, &yc[0]);
        let m_shift = martinez_first_order(&yb_s, &yc0_s);
        assert!(
            (m_plain - m_shift).abs() < 1e-6,
            "martinez drifted: {m_plain} vs {m_shift}"
        );

        let s_plain = sobol1993_first_order(&ya, &yb, &yc[0]);
        let s_shift = sobol1993_first_order(&ya_s, &yb_s, &yc0_s);
        // The raw estimator degrades by orders of magnitude more.
        let martinez_err = (m_plain - m_shift).abs();
        let sobol_err = (s_plain - s_shift).abs();
        assert!(
            sobol_err > 10.0 * martinez_err.max(1e-12),
            "expected 1993 estimator to degrade: martinez {martinez_err}, sobol93 {sobol_err}"
        );
    }

    #[test]
    fn degenerate_variance_returns_zero() {
        let flat = vec![2.0; 10];
        assert_eq!(saltelli_first_order(&flat, &flat, &flat), 0.0);
        assert_eq!(jansen_total_order(&flat, &flat, &flat), 0.0);
        assert_eq!(sobol1993_first_order(&flat, &flat, &flat), 0.0);
    }

    #[test]
    fn pooled_statistics_match_concatenation() {
        let ya = [1.0, 2.0, 3.0];
        let yb = [4.0, 5.0];
        let all = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((pooled_mean(&ya, &yb) - 3.0).abs() < 1e-15);
        assert!(
            (pooled_variance(&ya, &yb) - melissa_stats::batch::population_variance(&all)).abs()
                < 1e-12
        );
    }
}
