//! Property tests for the telemetry substrate: histogram/snapshot merge
//! must be associative, commutative and *bit-exact* (the property that
//! lets sharded studies fold per-shard snapshots in any order), and a
//! snapshot taken under concurrent ingest must always be self-consistent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use melissa_telemetry::{HistogramSnapshot, MetricsSnapshot, Registry};
use proptest::prelude::*;

fn histogram_from(values: &[u64]) -> HistogramSnapshot {
    let reg = Registry::new();
    let h = reg.histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn snapshot_from(counters: &[(String, u64)], values: &[u64]) -> MetricsSnapshot {
    let reg = Registry::new();
    for (name, v) in counters {
        reg.counter(name).add(*v);
        reg.gauge(name).set(*v);
    }
    let h = reg.histogram("lat");
    for &v in values {
        h.record(v);
    }
    reg.snapshot()
}

/// One of a fixed pool of metric names, so merges exercise both shared
/// and disjoint names.
fn small_name() -> impl Strategy<Value = String> {
    const NAMES: [&str; 4] = ["frames", "bytes", "reconnects", "queue"];
    (0usize..NAMES.len()).prop_map(|i| NAMES[i].to_string())
}

/// The full `u64` value range (the vendored proptest shim has no `any`).
fn any_u64() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn histogram_merge_matches_single_pass_bit_exactly(
        xs in prop::collection::vec(any_u64(), 0..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut a = histogram_from(&xs[..split]);
        let b = histogram_from(&xs[split..]);
        a.merge(&b);
        let whole = histogram_from(&xs);
        // Bit-exact: u64 equality, not a tolerance.
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in prop::collection::vec(any_u64(), 0..80),
        ys in prop::collection::vec(any_u64(), 0..80),
        zs in prop::collection::vec(any_u64(), 0..80),
    ) {
        let (x, y, z) = (histogram_from(&xs), histogram_from(&ys), histogram_from(&zs));

        // (x ∪ y) ∪ z
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        // x ∪ (y ∪ z)
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        prop_assert_eq!(&left, &right);

        // Commutative: z ∪ y ∪ x
        let mut rev = z;
        rev.merge(&y);
        rev.merge(&x);
        prop_assert_eq!(&left, &rev);
    }

    #[test]
    fn histogram_count_always_equals_bucket_sum(
        xs in prop::collection::vec(any_u64(), 0..200),
    ) {
        let h = histogram_from(&xs);
        prop_assert_eq!(h.count(), xs.len() as u64);
        let by_hand: u64 = h.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(h.count(), by_hand);
    }

    #[test]
    fn registry_snapshot_merge_is_associative_with_disjoint_and_shared_names(
        a_counters in prop::collection::vec((small_name(), any_u64()), 0..6),
        b_counters in prop::collection::vec((small_name(), any_u64()), 0..6),
        c_counters in prop::collection::vec((small_name(), any_u64()), 0..6),
        xs in prop::collection::vec(any_u64(), 0..40),
        ys in prop::collection::vec(any_u64(), 0..40),
    ) {
        let a = snapshot_from(&a_counters, &xs);
        let b = snapshot_from(&b_counters, &ys);
        let c = snapshot_from(&c_counters, &[]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }

    #[test]
    fn snapshot_codec_round_trip_is_identity(
        counters in prop::collection::vec((small_name(), any_u64()), 0..6),
        xs in prop::collection::vec(any_u64(), 0..60),
    ) {
        let snap = snapshot_from(&counters, &xs);
        let mut buf = bytes::BytesMut::new();
        snap.encode_into(&mut buf);
        let mut slice: &[u8] = &buf;
        let back = MetricsSnapshot::decode_from(&mut slice).unwrap();
        prop_assert_eq!(back, snap);
        prop_assert!(slice.is_empty());
    }
}

/// A snapshot taken while writer threads hammer the histogram must be
/// self-consistent: derived count ≡ Σ buckets *by construction*, and both
/// count and sum must be monotonically non-decreasing across snapshots.
#[test]
fn snapshot_under_concurrent_ingest_is_self_consistent() {
    let reg = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let n_writers = 4;
    let per_writer = 50_000u64;

    let writers: Vec<_> = (0..n_writers)
        .map(|w| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let h = reg.histogram("lat");
                let c = reg.counter("frames");
                for i in 0..per_writer {
                    h.record((w as u64).wrapping_mul(1_000_003).wrapping_add(i) % 4096);
                    c.inc();
                }
            })
        })
        .collect();

    let reader = {
        let reg = Arc::clone(&reg);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_sum = 0u64;
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                if let Some((_, h)) = snap.histograms.first() {
                    let count = h.count();
                    // count is derived from the buckets, so it can never
                    // disagree with them; it must also never go backwards.
                    assert!(count >= last_count, "count went backwards");
                    assert!(h.sum >= last_sum, "sum went backwards");
                    last_count = count;
                    last_sum = h.sum;
                    observed += 1;
                }
            }
            observed
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "reader never saw a snapshot");

    let final_snap = reg.snapshot();
    let (_, h) = &final_snap.histograms[0];
    assert_eq!(h.count(), n_writers as u64 * per_writer);
    assert_eq!(final_snap.counters[0].1, n_writers as u64 * per_writer);
}
