//! Lock-free metrics: atomic counters/gauges and fixed log2-bucket
//! histograms with a bit-exact, associative merge.
//!
//! The record path is pure atomics — a handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) is an `Arc` onto shared `AtomicU64`s, so instrumented
//! hot paths (the fused-ingest sweep, checkpoint writes) never take a
//! lock.  The [`Registry`] itself locks only on *registration* (a
//! control-path operation done once per metric name) and on snapshotting.
//!
//! Every metric value is an integer (`u64`), so snapshot merging is
//! integer addition (counters, histogram buckets) or `max` (gauges) —
//! both associative and bit-exact, which is what lets sharded studies
//! fold per-shard snapshots in any order and always agree
//! (property-tested in `tests/proptest_telemetry.rs`).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, BytesMut};
use melissa_transport::codec::{get_str, get_u64, put_str, WireResult};
use parking_lot::RwLock;

/// Number of histogram buckets: one zero bucket plus one per power of
/// two, covering the full `u64` range.
pub const N_BUCKETS: usize = 65;

/// A monotonically increasing counter (shared atomic).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (shared atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared storage of one histogram: 65 log2 buckets plus a running
/// sum, all atomics.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed log2-bucket histogram handle.
///
/// Bucket 0 counts zero values; bucket `i ≥ 1` counts values `v` with
/// `2^(i−1) ≤ v < 2^i`.  Recording is two relaxed atomic adds; there is
/// no per-record count — a snapshot *derives* its count from the bucket
/// vector, so a snapshot taken under concurrent ingest is always
/// self-consistent (count ≡ Σ buckets by construction).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// The bucket index of value `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket vector and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The 65 log2 bucket counts ([`Histogram::bucket_of`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; N_BUCKETS],
            sum: 0,
        }
    }

    /// Total observations, derived from the buckets (never stored
    /// separately, so it cannot disagree with them).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Inclusive upper bound of bucket `i` (`0`, then `2^i − 1`).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Folds another snapshot into this one: elementwise wrapping `u64`
    /// addition on buckets and sum.  Integer addition is associative and
    /// commutative, so any merge order over any shard partition produces
    /// bit-identical results (property-tested).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

/// The registry: named counters, gauges and histograms.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a lock; the
/// returned handles never do.  Look-ups are get-or-create, so any layer
/// can resolve the same metric by name and share storage.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCore>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return Counter(Arc::clone(c));
        }
        let mut w = self.counters.write();
        Counter(Arc::clone(w.entry(name.to_string()).or_default()))
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return Gauge(Arc::clone(g));
        }
        let mut w = self.gauges.write();
        Gauge(Arc::clone(w.entry(name.to_string()).or_default()))
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return Histogram(Arc::clone(h));
        }
        let mut w = self.histograms.write();
        Histogram(Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        ))
    }

    /// A point-in-time copy of every registered metric, sorted by name
    /// (deterministic encode/render order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            buckets: v
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            sum: v.sum.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counter pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauge pairs, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` histogram pairs, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Folds another snapshot into this one, name-aligned: counters add
    /// (wrapping), gauges take the max, histograms merge elementwise.
    /// All three operations are associative and commutative on `u64`, so
    /// cross-shard aggregation is bit-exact in any fold order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_by_name(&mut self.counters, &other.counters, |a, b| {
            *a = a.wrapping_add(b)
        });
        merge_by_name(&mut self.gauges, &other.gauges, |a, b| *a = (*a).max(b));
        // Histograms: same name-union walk, merging bucket vectors.
        let mut merged: BTreeMap<String, HistogramSnapshot> = self.histograms.drain(..).collect();
        for (name, h) in &other.histograms {
            merged
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
        self.histograms = merged.into_iter().collect();
    }

    /// Serialises the snapshot with the fixed little-endian codec.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.counters.len() as u32);
        for (name, v) in &self.counters {
            put_str(buf, name);
            buf.put_u64_le(*v);
        }
        buf.put_u32_le(self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            put_str(buf, name);
            buf.put_u64_le(*v);
        }
        buf.put_u32_le(self.histograms.len() as u32);
        for (name, h) in &self.histograms {
            put_str(buf, name);
            buf.put_u64_le(h.sum);
            for b in &h.buckets {
                buf.put_u64_le(*b);
            }
        }
    }

    /// Decodes a snapshot produced by [`encode_into`](Self::encode_into).
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        use melissa_transport::codec::get_u32;
        let n = get_u32(buf, "counter count")?;
        let mut counters = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = get_str(buf, "counter name")?;
            counters.push((name, get_u64(buf, "counter value")?));
        }
        let n = get_u32(buf, "gauge count")?;
        let mut gauges = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = get_str(buf, "gauge name")?;
            gauges.push((name, get_u64(buf, "gauge value")?));
        }
        let n = get_u32(buf, "histogram count")?;
        let mut histograms = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let name = get_str(buf, "histogram name")?;
            let sum = get_u64(buf, "histogram sum")?;
            let mut buckets = Vec::with_capacity(N_BUCKETS);
            for _ in 0..N_BUCKETS {
                buckets.push(get_u64(buf, "histogram bucket")?);
            }
            histograms.push((name, HistogramSnapshot { buckets, sum }));
        }
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }
}

/// Name-union walk over two sorted `(name, u64)` lists, applying `fold`
/// to values present on both sides and keeping either side's extras.
fn merge_by_name<F: Fn(&mut u64, u64)>(a: &mut Vec<(String, u64)>, b: &[(String, u64)], fold: F) {
    let mut merged: BTreeMap<String, u64> = a.drain(..).collect();
    for (name, v) in b {
        match merged.entry(name.clone()) {
            std::collections::btree_map::Entry::Occupied(mut e) => fold(e.get_mut(), *v),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(*v);
            }
        }
    }
    *a = merged.into_iter().collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage_by_name() {
        let reg = Registry::new();
        let a = reg.counter("frames");
        let b = reg.counter("frames");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("frames").get(), 4);
        let g = reg.gauge("epoch");
        g.set(7);
        assert_eq!(reg.gauge("epoch").get(), 7);
    }

    #[test]
    fn histogram_buckets_follow_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_count_is_derived_from_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0u64, 1, 5, 5, 1024] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 1035);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[3], 2);
        assert_eq!(snap.buckets[11], 1);
    }

    #[test]
    fn snapshot_round_trips_through_the_codec() {
        let reg = Registry::new();
        reg.counter("a").add(42);
        reg.gauge("g").set(9);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        let mut buf = BytesMut::new();
        snap.encode_into(&mut buf);
        let mut slice: &[u8] = &buf;
        let back = MetricsSnapshot::decode_from(&mut slice).unwrap();
        assert_eq!(back, snap);
        assert!(slice.is_empty(), "trailing bytes after decode");
    }

    #[test]
    fn merge_unions_names() {
        let mut a = MetricsSnapshot {
            counters: vec![("x".into(), 1)],
            gauges: vec![("e".into(), 3)],
            histograms: vec![],
        };
        let b = MetricsSnapshot {
            counters: vec![("x".into(), 2), ("y".into(), 5)],
            gauges: vec![("e".into(), 1)],
            histograms: vec![],
        };
        a.merge(&b);
        assert_eq!(a.counters, vec![("x".into(), 3), ("y".into(), 5)]);
        assert_eq!(a.gauges, vec![("e".into(), 3)], "gauges take the max");
    }
}
