//! The live scrape protocol: point-in-time observability snapshots served
//! over the study's own transport.
//!
//! Each shard's server binds `telemetry/shard<k>`
//! ([`melissa_transport::directory::names::telemetry`]) next to its data
//! endpoints and answers [`ScrapeRequest`]s with a [`ScrapeSnapshot`] in
//! one of three formats: the fixed binary codec (machine consumers), JSON,
//! or a Prometheus-style text exposition.  Scrapers are ordinary transport
//! clients — they bind a throwaway reply endpoint, send a request naming
//! it, and wait — so scraping works over every backend (in-process, TCP,
//! multi-node TCP via the directory) with no extra listener or HTTP stack.
//!
//! Serving is strictly read-only over atomic snapshots taken *outside* the
//! ingest path, so a scraped study computes bit-identical statistics to an
//! unscraped one (asserted by the `telemetry_study` integration test).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use melissa_transport::codec::{
    get_f64, get_str, get_u32, get_u64, get_u8, put_str, WireError, WireResult,
};
use melissa_transport::directory::names;
use melissa_transport::{Frame, LinkStatsSnapshot, Transport};

use crate::events::{decode_events, encode_events, StudyEvent};
use crate::metrics::MetricsSnapshot;

/// Snapshot wire format a scraper can ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScrapeFormat {
    /// The fixed little-endian codec ([`ScrapeSnapshot::decode_from`]).
    #[default]
    Binary,
    /// JSON text ([`ScrapeSnapshot::to_json`]).
    Json,
    /// Prometheus-style text exposition ([`ScrapeSnapshot::to_prometheus`]).
    Prometheus,
}

impl ScrapeFormat {
    fn as_byte(self) -> u8 {
        match self {
            ScrapeFormat::Binary => 0,
            ScrapeFormat::Json => 1,
            ScrapeFormat::Prometheus => 2,
        }
    }

    fn from_byte(b: u8) -> WireResult<Self> {
        match b {
            0 => Ok(ScrapeFormat::Binary),
            1 => Ok(ScrapeFormat::Json),
            2 => Ok(ScrapeFormat::Prometheus),
            _ => Err(WireError::Invalid {
                what: "unknown scrape format",
            }),
        }
    }
}

/// A scraper's request: where to send the reply, and in which format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapeRequest {
    /// Endpoint the scraper bound for the reply.
    pub reply_to: String,
    /// Requested snapshot format.
    pub format: ScrapeFormat,
}

impl ScrapeRequest {
    /// Serialises the request.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(1);
        put_str(buf, &self.reply_to);
        buf.put_u8(self.format.as_byte());
    }

    /// Decodes a request frame.
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        let tag = get_u8(buf, "scrape request tag")?;
        if tag != 1 {
            return Err(WireError::Invalid {
                what: "not a scrape request",
            });
        }
        let reply_to = get_str(buf, "scrape reply endpoint")?;
        let format = ScrapeFormat::from_byte(get_u8(buf, "scrape format")?)?;
        Ok(Self { reply_to, format })
    }
}

/// One data link's counters inside a snapshot (endpoint-keyed rollup of
/// [`LinkStatsSnapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkScrape {
    /// Endpoint name the frames were sent toward.
    pub endpoint: String,
    /// Frames sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Bytes that actually crossed the wire (after in-frame compression,
    /// including framing and retransmits); equals `bytes` on wireless or
    /// uncompressed links, so `bytes / wire_bytes` is always the
    /// compression ratio.
    pub wire_bytes: u64,
    /// Sends that blocked on the high-water mark.
    pub blocked_sends: u64,
    /// Nanoseconds spent blocked.
    pub blocked_nanos: u64,
}

impl LinkScrape {
    /// Wraps a transport rollup entry.
    pub fn of(endpoint: &str, s: &LinkStatsSnapshot) -> Self {
        Self {
            endpoint: endpoint.to_string(),
            messages: s.messages,
            bytes: s.bytes,
            wire_bytes: s.wire_bytes,
            blocked_sends: s.blocked_sends,
            blocked_nanos: s.blocked_nanos,
        }
    }
}

/// A point-in-time view of one shard's study progress, transport load,
/// metrics registry and recent events.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrapeSnapshot {
    /// The serving shard slot.
    pub shard: u32,
    /// Transport backend identifier.
    pub backend: String,
    /// Nanoseconds since the shard's study clock origin.
    pub uptime_nanos: u64,
    /// Groups fully finished on this shard.
    pub groups_finished: u64,
    /// Groups currently streaming.
    pub groups_running: u64,
    /// Aggregate max Sobol' CI half-width (NaN until defined).
    pub max_ci_width: f64,
    /// Aggregate max quantile step (NaN until defined).
    pub max_quantile_step: f64,
    /// Current routing epoch observed by this shard's supervisor.
    pub routing_epoch: u64,
    /// Transport link re-establishments (multi-node self-healing).
    pub reconnects: u64,
    /// Per-endpoint link counters (backpressure view).
    pub links: Vec<LinkScrape>,
    /// The metrics registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Most recent journal events (bounded window).
    pub events: Vec<StudyEvent>,
}

impl ScrapeSnapshot {
    /// Serialises the snapshot with the fixed codec.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.shard);
        put_str(buf, &self.backend);
        buf.put_u64_le(self.uptime_nanos);
        buf.put_u64_le(self.groups_finished);
        buf.put_u64_le(self.groups_running);
        buf.put_f64_le(self.max_ci_width);
        buf.put_f64_le(self.max_quantile_step);
        buf.put_u64_le(self.routing_epoch);
        buf.put_u64_le(self.reconnects);
        buf.put_u32_le(self.links.len() as u32);
        for l in &self.links {
            put_str(buf, &l.endpoint);
            buf.put_u64_le(l.messages);
            buf.put_u64_le(l.bytes);
            buf.put_u64_le(l.wire_bytes);
            buf.put_u64_le(l.blocked_sends);
            buf.put_u64_le(l.blocked_nanos);
        }
        self.metrics.encode_into(buf);
        encode_events(&self.events, buf);
    }

    /// Decodes a snapshot produced by [`encode_into`](Self::encode_into).
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        let shard = get_u32(buf, "snapshot shard")?;
        let backend = get_str(buf, "snapshot backend")?;
        let uptime_nanos = get_u64(buf, "snapshot uptime")?;
        let groups_finished = get_u64(buf, "groups finished")?;
        let groups_running = get_u64(buf, "groups running")?;
        let max_ci_width = get_f64(buf, "max ci width")?;
        let max_quantile_step = get_f64(buf, "max quantile step")?;
        let routing_epoch = get_u64(buf, "routing epoch")?;
        let reconnects = get_u64(buf, "reconnects")?;
        let n_links = get_u32(buf, "link count")?;
        let mut links = Vec::with_capacity(n_links as usize);
        for _ in 0..n_links {
            links.push(LinkScrape {
                endpoint: get_str(buf, "link endpoint")?,
                messages: get_u64(buf, "link messages")?,
                bytes: get_u64(buf, "link bytes")?,
                wire_bytes: get_u64(buf, "link wire bytes")?,
                blocked_sends: get_u64(buf, "link blocked sends")?,
                blocked_nanos: get_u64(buf, "link blocked nanos")?,
            });
        }
        let metrics = MetricsSnapshot::decode_from(buf)?;
        let events = decode_events(buf)?;
        Ok(Self {
            shard,
            backend,
            uptime_nanos,
            groups_finished,
            groups_running,
            max_ci_width,
            max_quantile_step,
            routing_epoch,
            reconnects,
            links,
            metrics,
            events,
        })
    }

    /// Renders the snapshot as a JSON object (hand-rolled: no serde in
    /// this reproduction).  Non-finite floats render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_kv_u64(&mut out, "shard", self.shard as u64);
        push_kv_str(&mut out, "backend", &self.backend);
        push_kv_u64(&mut out, "uptime_nanos", self.uptime_nanos);
        push_kv_u64(&mut out, "groups_finished", self.groups_finished);
        push_kv_u64(&mut out, "groups_running", self.groups_running);
        push_kv_f64(&mut out, "max_ci_width", self.max_ci_width);
        push_kv_f64(&mut out, "max_quantile_step", self.max_quantile_step);
        push_kv_u64(&mut out, "routing_epoch", self.routing_epoch);
        push_kv_u64(&mut out, "reconnects", self.reconnects);

        out.push_str("\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_kv_str(&mut out, "endpoint", &l.endpoint);
            push_kv_u64(&mut out, "messages", l.messages);
            push_kv_u64(&mut out, "bytes", l.bytes);
            push_kv_u64(&mut out, "wire_bytes", l.wire_bytes);
            push_kv_u64(&mut out, "blocked_sends", l.blocked_sends);
            out.push_str(&format!("\"blocked_nanos\":{}", l.blocked_nanos));
            out.push('}');
        }
        out.push_str("],");

        out.push_str("\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_string(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"mean\":{}}}",
                json_string(name),
                h.count(),
                h.sum,
                json_f64(h.mean())
            ));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"at_nanos\":{},\"shard\":{},\"text\":{}}}",
                e.seq,
                e.at_nanos,
                e.shard,
                json_string(&e.kind.render())
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot as a Prometheus-style text exposition
    /// (`melissa_`-prefixed families, `shard` label, cumulative `le`
    /// histogram buckets).
    pub fn to_prometheus(&self) -> String {
        let shard = self.shard;
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, name: &str, value: String| {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name}{{shard=\"{shard}\"}} {value}\n"));
        };
        gauge(
            &mut out,
            "melissa_uptime_seconds",
            format!("{:.3}", self.uptime_nanos as f64 / 1e9),
        );
        gauge(
            &mut out,
            "melissa_groups_finished",
            self.groups_finished.to_string(),
        );
        gauge(
            &mut out,
            "melissa_groups_running",
            self.groups_running.to_string(),
        );
        gauge(
            &mut out,
            "melissa_max_ci_width",
            prom_f64(self.max_ci_width),
        );
        gauge(
            &mut out,
            "melissa_max_quantile_step",
            prom_f64(self.max_quantile_step),
        );
        gauge(
            &mut out,
            "melissa_routing_epoch",
            self.routing_epoch.to_string(),
        );
        out.push_str("# TYPE melissa_transport_reconnects_total counter\n");
        out.push_str(&format!(
            "melissa_transport_reconnects_total{{shard=\"{shard}\"}} {}\n",
            self.reconnects
        ));

        for family in [
            ("melissa_link_messages_total", "messages"),
            ("melissa_link_bytes_total", "bytes"),
            ("melissa_link_wire_bytes_total", "wire_bytes"),
            ("melissa_link_blocked_sends_total", "blocked_sends"),
            ("melissa_link_blocked_nanos_total", "blocked_nanos"),
        ] {
            out.push_str(&format!("# TYPE {} counter\n", family.0));
            for l in &self.links {
                let v = match family.1 {
                    "messages" => l.messages,
                    "bytes" => l.bytes,
                    "wire_bytes" => l.wire_bytes,
                    "blocked_sends" => l.blocked_sends,
                    _ => l.blocked_nanos,
                };
                out.push_str(&format!(
                    "{}{{shard=\"{shard}\",endpoint=\"{}\"}} {v}\n",
                    family.0,
                    prom_label(&l.endpoint)
                ));
            }
        }

        for (name, v) in &self.metrics.counters {
            let m = format!("melissa_{}", prom_name(name));
            out.push_str(&format!("# TYPE {m} counter\n"));
            out.push_str(&format!("{m}{{shard=\"{shard}\"}} {v}\n"));
        }
        for (name, v) in &self.metrics.gauges {
            let m = format!("melissa_{}", prom_name(name));
            out.push_str(&format!("# TYPE {m} gauge\n"));
            out.push_str(&format!("{m}{{shard=\"{shard}\"}} {v}\n"));
        }
        for (name, h) in &self.metrics.histograms {
            let m = format!("melissa_{}", prom_name(name));
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                if *b == 0 && i + 1 < h.buckets.len() {
                    continue; // keep the exposition sparse; +Inf always prints
                }
                cumulative = cumulative.wrapping_add(*b);
                let le = if i + 1 == h.buckets.len() {
                    "+Inf".to_string()
                } else {
                    crate::metrics::HistogramSnapshot::bucket_upper_bound(i).to_string()
                };
                out.push_str(&format!(
                    "{m}_bucket{{shard=\"{shard}\",le=\"{le}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("{m}_sum{{shard=\"{shard}\"}} {}\n", h.sum));
            out.push_str(&format!("{m}_count{{shard=\"{shard}\"}} {}\n", h.count()));
        }
        out
    }

    /// Renders the snapshot in the requested format as reply-frame bytes
    /// (one format byte, then the body).
    pub fn encode_reply(&self, format: ScrapeFormat) -> Frame {
        let mut buf = BytesMut::new();
        buf.put_u8(format.as_byte());
        match format {
            ScrapeFormat::Binary => self.encode_into(&mut buf),
            ScrapeFormat::Json => buf.put_slice(self.to_json().as_bytes()),
            ScrapeFormat::Prometheus => buf.put_slice(self.to_prometheus().as_bytes()),
        }
        buf.freeze()
    }
}

/// A decoded scrape reply: binary snapshots parse, text formats pass
/// through verbatim.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrapeReply {
    /// A structured snapshot (from [`ScrapeFormat::Binary`]).
    Snapshot(Box<ScrapeSnapshot>),
    /// Rendered text (JSON or Prometheus exposition).
    Text(String),
}

impl ScrapeReply {
    /// Decodes a reply frame produced by [`ScrapeSnapshot::encode_reply`].
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        let format = ScrapeFormat::from_byte(get_u8(buf, "scrape reply format")?)?;
        match format {
            ScrapeFormat::Binary => Ok(ScrapeReply::Snapshot(Box::new(
                ScrapeSnapshot::decode_from(buf)?,
            ))),
            ScrapeFormat::Json | ScrapeFormat::Prometheus => {
                let text = String::from_utf8(buf.to_vec()).map_err(|_| WireError::Invalid {
                    what: "scrape reply text",
                })?;
                *buf = &buf[buf.len()..];
                Ok(ScrapeReply::Text(text))
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_kv_u64(out: &mut String, key: &str, v: u64) {
    out.push_str(&format!("\"{key}\":{v},"));
}

fn push_kv_str(out: &mut String, key: &str, v: &str) {
    out.push_str(&format!("\"{key}\":{},", json_string(v)));
}

fn push_kv_f64(out: &mut String, key: &str, v: f64) {
    out.push_str(&format!("\"{key}\":{},", json_f64(v)));
}

fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn prom_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"")
}

static REPLY_NONCE: AtomicU64 = AtomicU64::new(0);

/// Scrapes an arbitrary endpoint speaking the scrape protocol and
/// returns the raw reply.
///
/// Binds a throwaway reply endpoint, sends a [`ScrapeRequest`], waits up
/// to `timeout` for the reply, and unbinds.  Works over every backend;
/// fails with a human-readable error when nothing is serving (not bound
/// yet, study finished, or telemetry disabled).  This is the primitive
/// under every convenience scraper: per-shard endpoints, per-study
/// scoped ones, and the daemon-level aggregate all answer the same
/// request frame.
pub fn scrape_endpoint_reply(
    transport: &Arc<dyn Transport>,
    endpoint: &str,
    format: ScrapeFormat,
    timeout: Duration,
) -> Result<ScrapeReply, String> {
    let reply_to = format!(
        "telemetry/reply/{}/{}",
        std::process::id(),
        REPLY_NONCE.fetch_add(1, Ordering::Relaxed)
    );
    let rx = transport.bind(&reply_to, 8);
    let result = (|| {
        let tx = transport
            .connect_retry(endpoint, timeout)
            .map_err(|e| format!("telemetry endpoint '{endpoint}': {e}"))?;
        let mut buf = BytesMut::new();
        ScrapeRequest {
            reply_to: reply_to.clone(),
            format,
        }
        .encode_into(&mut buf);
        tx.send(buf.freeze())
            .map_err(|e| format!("scrape request to '{endpoint}': {e}"))?;
        let frame = rx
            .recv_timeout(timeout)
            .map_err(|e| format!("scrape reply from '{endpoint}': {e:?}"))?;
        let mut slice: &[u8] = &frame;
        ScrapeReply::decode_from(&mut slice).map_err(|e| format!("scrape reply decode: {e}"))
    })();
    transport.unbind(&reply_to);
    result
}

/// Scrapes shard `shard`'s telemetry endpoint inside server scope
/// `scope` (`""` for a standalone study, `"study<id>"` under the
/// multi-tenant daemon) and returns the reply.
pub fn scrape_reply_in(
    transport: &Arc<dyn Transport>,
    scope: &str,
    shard: usize,
    format: ScrapeFormat,
    timeout: Duration,
) -> Result<ScrapeReply, String> {
    scrape_endpoint_reply(
        transport,
        &names::telemetry_in(scope, shard),
        format,
        timeout,
    )
}

/// Scrapes an unscoped (standalone-study) shard endpoint.
pub fn scrape_reply(
    transport: &Arc<dyn Transport>,
    shard: usize,
    format: ScrapeFormat,
    timeout: Duration,
) -> Result<ScrapeReply, String> {
    scrape_reply_in(transport, "", shard, format, timeout)
}

/// Scrapes a structured snapshot (binary format) from a scoped shard.
pub fn scrape_in(
    transport: &Arc<dyn Transport>,
    scope: &str,
    shard: usize,
    timeout: Duration,
) -> Result<ScrapeSnapshot, String> {
    match scrape_reply_in(transport, scope, shard, ScrapeFormat::Binary, timeout)? {
        ScrapeReply::Snapshot(s) => Ok(*s),
        ScrapeReply::Text(_) => Err("expected a binary snapshot, got text".to_string()),
    }
}

/// Scrapes a structured snapshot (binary format).
pub fn scrape(
    transport: &Arc<dyn Transport>,
    shard: usize,
    timeout: Duration,
) -> Result<ScrapeSnapshot, String> {
    scrape_in(transport, "", shard, timeout)
}

/// Scrapes a rendered text snapshot (JSON or Prometheus) from a scoped
/// shard.
pub fn scrape_text_in(
    transport: &Arc<dyn Transport>,
    scope: &str,
    shard: usize,
    format: ScrapeFormat,
    timeout: Duration,
) -> Result<String, String> {
    match scrape_reply_in(transport, scope, shard, format, timeout)? {
        ScrapeReply::Text(t) => Ok(t),
        ScrapeReply::Snapshot(_) => Err("expected text, got a binary snapshot".to_string()),
    }
}

/// Scrapes a rendered text snapshot (JSON or Prometheus).
pub fn scrape_text(
    transport: &Arc<dyn Transport>,
    shard: usize,
    format: ScrapeFormat,
    timeout: Duration,
) -> Result<String, String> {
    scrape_text_in(transport, "", shard, format, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::metrics::Registry;

    fn sample() -> ScrapeSnapshot {
        let reg = Registry::new();
        reg.counter("reconnects").add(2);
        reg.gauge("runner_queue_depth").set(5);
        let h = reg.histogram("ingest_sweep_nanos");
        h.record(0);
        h.record(3);
        h.record(1024);
        ScrapeSnapshot {
            shard: 1,
            backend: "in-process".into(),
            uptime_nanos: 123_456_789,
            groups_finished: 4,
            groups_running: 2,
            max_ci_width: 0.25,
            max_quantile_step: f64::NAN,
            routing_epoch: 3,
            reconnects: 2,
            links: vec![LinkScrape {
                endpoint: "shard1/server/0".into(),
                messages: 10,
                bytes: 4096,
                wire_bytes: 2048,
                blocked_sends: 1,
                blocked_nanos: 999,
            }],
            metrics: reg.snapshot(),
            events: vec![StudyEvent {
                seq: 0,
                at_nanos: 42,
                shard: 1,
                kind: EventKind::Info {
                    text: "quote \" and \\ back".into(),
                },
            }],
        }
    }

    #[test]
    fn binary_snapshot_round_trips() {
        let snap = sample();
        let mut buf = BytesMut::new();
        snap.encode_into(&mut buf);
        let mut slice: &[u8] = &buf;
        let back = ScrapeSnapshot::decode_from(&mut slice).unwrap();
        assert_eq!(back.shard, snap.shard);
        assert_eq!(back.links, snap.links);
        assert_eq!(back.metrics, snap.metrics);
        assert_eq!(back.events, snap.events);
        assert!(back.max_quantile_step.is_nan());
        assert!(slice.is_empty());
    }

    #[test]
    fn reply_frame_round_trips_every_format() {
        let snap = sample();
        for format in [
            ScrapeFormat::Binary,
            ScrapeFormat::Json,
            ScrapeFormat::Prometheus,
        ] {
            let frame = snap.encode_reply(format);
            let mut slice: &[u8] = &frame;
            let reply = ScrapeReply::decode_from(&mut slice).unwrap();
            match (format, reply) {
                (ScrapeFormat::Binary, ScrapeReply::Snapshot(s)) => assert_eq!(s.shard, 1),
                (_, ScrapeReply::Text(t)) => assert!(!t.is_empty()),
                _ => panic!("format/reply mismatch"),
            }
        }
    }

    #[test]
    fn json_handles_non_finite_and_escapes() {
        let json = sample().to_json();
        assert!(json.contains("\"max_quantile_step\":null"));
        assert!(json.contains("\"max_ci_width\":0.25"));
        assert!(json.contains("quote \\\" and \\\\ back"));
        assert!(json.contains("\"routing_epoch\":3"));
        assert!(json.contains("\"wire_bytes\":2048"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn prometheus_exposes_wire_bytes_per_link() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE melissa_link_wire_bytes_total counter"));
        assert!(text.contains(
            "melissa_link_wire_bytes_total{shard=\"1\",endpoint=\"shard1/server/0\"} 2048"
        ));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_inf() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE melissa_ingest_sweep_nanos histogram"));
        // 0 → bucket le="0"; 3 → le="3" (2^2-1=3); 1024 → le="2047".
        assert!(text.contains("melissa_ingest_sweep_nanos_bucket{shard=\"1\",le=\"0\"} 1"));
        assert!(text.contains("melissa_ingest_sweep_nanos_bucket{shard=\"1\",le=\"3\"} 2"));
        assert!(text.contains("melissa_ingest_sweep_nanos_bucket{shard=\"1\",le=\"2047\"} 3"));
        assert!(text.contains("melissa_ingest_sweep_nanos_bucket{shard=\"1\",le=\"+Inf\"} 3"));
        assert!(text.contains("melissa_ingest_sweep_nanos_count{shard=\"1\"} 3"));
        assert!(text.contains("melissa_max_quantile_step{shard=\"1\"} NaN"));
        assert!(text.contains("melissa_transport_reconnects_total{shard=\"1\"} 2"));
    }

    #[test]
    fn scrape_round_trips_over_the_in_process_transport() {
        use melissa_transport::{make_transport, TransportKind};
        let transport = make_transport(TransportKind::InProcess);
        let server_rx = transport.bind(&names::telemetry(0), 8);
        let snap = sample();
        let t2 = Arc::clone(&transport);
        let serve = std::thread::spawn(move || {
            let frame = server_rx.recv().expect("request");
            let mut slice: &[u8] = &frame;
            let req = ScrapeRequest::decode_from(&mut slice).expect("decode request");
            let tx = t2.connect(&req.reply_to).expect("reply connect");
            tx.send(snap.encode_reply(req.format)).expect("reply send");
        });
        let got = scrape(&transport, 0, Duration::from_secs(5)).expect("scrape");
        serve.join().unwrap();
        assert_eq!(got.shard, 1);
        assert_eq!(got.groups_finished, 4);
        assert_eq!(got.metrics.counters.len(), 1);
    }
}
