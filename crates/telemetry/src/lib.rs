//! Live observability for Melissa studies.
//!
//! The paper's core claim (Terraz et al., SC 2017) is that sensitivity
//! analysis happens *in transit* — so the study should be observable in
//! transit too, not only through the end-of-study report.  This crate is
//! the substrate for that, in three layers:
//!
//! * [`metrics`] — a lock-free registry of atomic counters, gauges and
//!   fixed log2-bucket histograms.  Recording is relaxed atomics only;
//!   snapshots merge associatively and bit-exactly across shards.
//! * [`events`] — the typed, timestamped [`StudyEvent`] journal that
//!   replaces the free-text failure/restart log, with the legacy string
//!   render kept as a view.
//! * [`mod@scrape`] — a live snapshot protocol served on each shard's
//!   `telemetry/shard<k>` endpoint over the study's own transport, in
//!   binary, JSON, or Prometheus-style text (see `examples/melissa_top.rs`
//!   for a polling renderer).
//!
//! A [`Telemetry`] value ties the three together for one shard: the
//! shared registry, the shard's study clock origin, the routing epoch
//! gauge, and a bounded ring of recent events.  It is engineered to be
//! ignorable: with telemetry disabled nothing is allocated, and with it
//! enabled the ingest-path cost is two relaxed atomic adds plus a tick
//! increment per frame, with the sweep-duration clock reads sampled on a
//! fixed stride so even a syscall-priced monotonic clock stays inside
//! the budget (<2%, measured by the `telemetry_ab` benchmark into
//! `BENCH_telemetry.json`).

#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod scrape;

pub use events::{decode_events, encode_events, EventKind, StudyEvent};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, N_BUCKETS,
};
pub use scrape::{
    scrape, scrape_endpoint_reply, scrape_in, scrape_reply, scrape_reply_in, scrape_text,
    scrape_text_in, LinkScrape, ScrapeFormat, ScrapeReply, ScrapeRequest, ScrapeSnapshot,
};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Events kept in the live ring (the scrape window; the full journal
/// lives in the `StudyReport`).
const EVENT_RING_CAP: usize = 256;

/// One shard's live telemetry: shared metrics registry, study clock,
/// routing-epoch gauge, and a bounded ring of recent events.
///
/// Shared as `Arc<Telemetry>` between the shard supervisor (which stamps
/// events and protocol timings), the server (which times ingest and
/// checkpoints and serves scrapes), and anything else on the shard.
pub struct Telemetry {
    shard: u32,
    origin: Instant,
    registry: Registry,
    routing_epoch: AtomicU64,
    events: Mutex<VecDeque<StudyEvent>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("shard", &self.shard)
            .field("routing_epoch", &self.routing_epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Telemetry for `shard` with the study clock starting now.
    pub fn new(shard: u32) -> Arc<Self> {
        Self::with_origin(shard, Instant::now())
    }

    /// Telemetry for `shard` stamping times against a shared `origin`
    /// (every shard of one study should share it, so per-shard event
    /// timestamps are comparable).
    pub fn with_origin(shard: u32, origin: Instant) -> Arc<Self> {
        Arc::new(Self {
            shard,
            origin,
            registry: Registry::new(),
            routing_epoch: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(EVENT_RING_CAP)),
        })
    }

    /// The shard this telemetry describes.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The study clock origin.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Nanoseconds elapsed on the study clock.
    pub fn uptime_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Updates the routing-epoch gauge (set by the supervisor after
    /// every fence).
    pub fn set_routing_epoch(&self, epoch: u64) {
        self.routing_epoch.store(epoch, Ordering::Relaxed);
    }

    /// The last routing epoch the supervisor observed.
    pub fn routing_epoch(&self) -> u64 {
        self.routing_epoch.load(Ordering::Relaxed)
    }

    /// Appends an event to the live ring (oldest dropped past the cap).
    pub fn record_event(&self, event: StudyEvent) {
        let mut ring = self.events.lock();
        if ring.len() == EVENT_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// The most recent `n` events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<StudyEvent> {
        let ring = self.events.lock();
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ring_is_bounded_and_ordered() {
        let tele = Telemetry::new(1);
        for i in 0..(EVENT_RING_CAP as u64 + 10) {
            tele.record_event(StudyEvent {
                seq: i,
                at_nanos: i,
                shard: 1,
                kind: EventKind::Info {
                    text: format!("e{i}"),
                },
            });
        }
        let recent = tele.recent_events(4);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[3].seq, EVENT_RING_CAP as u64 + 9);
        assert_eq!(recent[0].seq, EVENT_RING_CAP as u64 + 6);
        let all = tele.recent_events(usize::MAX);
        assert_eq!(all.len(), EVENT_RING_CAP);
        assert_eq!(all[0].seq, 10, "oldest events dropped");
    }

    #[test]
    fn routing_epoch_and_clock_are_live() {
        let tele = Telemetry::new(0);
        assert_eq!(tele.routing_epoch(), 0);
        tele.set_routing_epoch(5);
        assert_eq!(tele.routing_epoch(), 5);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(tele.uptime_nanos() > 0);
        assert_eq!(tele.shard(), 0);
    }
}
