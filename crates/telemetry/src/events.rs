//! The typed study-event journal: every failure/restart/rebalance event a
//! supervisor used to log as free text, as a timestamped, shard-scoped,
//! codec-serializable value.
//!
//! Events are stamped against the *study clock* (a shared origin
//! `Instant`), so per-shard journals merge into one chronologically
//! ordered study log with a stable total order: sort by
//! `(at_nanos, shard, seq)`.  The legacy free-text form is kept as a view
//! ([`EventKind::render`] / [`StudyEvent::contains`]), so reports read
//! exactly as before.

use bytes::{BufMut, BytesMut};
use melissa_transport::codec::{
    get_f64, get_str, get_u32, get_u64, get_u8, put_str, WireError, WireResult,
};

/// What happened — one variant per supervisor event class, with the
/// free-text escape hatch [`EventKind::Info`] for anything else.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The server reported a group silent past the timeout.
    GroupTimeout {
        /// The silent group.
        group: u64,
    },
    /// A failed group was killed and resubmitted.
    GroupRestarted {
        /// The restarted group.
        group: u64,
        /// The new instance number.
        instance: u32,
    },
    /// A group job ended without completing.
    GroupDied {
        /// The dead group.
        group: u64,
        /// The instance that died.
        instance: u32,
        /// The job outcome, rendered.
        detail: String,
    },
    /// A job ran past twice the group timeout without the server ever
    /// hearing from it.
    GroupZombie {
        /// The zombie group.
        group: u64,
        /// The zombie instance.
        instance: u32,
    },
    /// A group exhausted its retry budget and was given up.
    GroupAbandoned {
        /// The abandoned group.
        group: u64,
        /// The exhausted retry cap.
        retries: u32,
    },
    /// A group was resubmitted after a server checkpoint-restore.
    GroupResubmitted {
        /// The resubmitted group.
        group: u64,
        /// The new instance number.
        instance: u32,
    },
    /// Heartbeat loss (or a scripted kill) triggered a checkpoint-restore
    /// server failover.
    ServerRestarted,
    /// A scripted transient server kill fired.
    ServerKillInjected {
        /// Finished groups when the kill fired.
        finished: u64,
    },
    /// A scripted permanent shard death fired.
    ShardDeathInjected {
        /// Finished groups when the death fired.
        finished: u64,
        /// The slot adopting this shard's groups.
        rehome_to: u32,
    },
    /// An epoch fence migrated groups away from this shard.
    MigrationFence {
        /// The new routing epoch.
        epoch: u64,
        /// Groups handed off.
        n_groups: u64,
        /// The source shard.
        from: u32,
        /// The target slot.
        to: u32,
    },
    /// A handoff arrived: this shard adopted migrated groups.
    GroupsAdopted {
        /// The fencing epoch.
        epoch: u64,
        /// Groups adopted.
        n_groups: u64,
        /// The source slot.
        from: u32,
    },
    /// A group finished while its migration fence was draining; it stays.
    FinishedDuringFence {
        /// The group that finished.
        group: u64,
        /// The shard it stays on.
        shard: u32,
    },
    /// A dead shard's unfinished groups were re-homed to a peer.
    ShardRehomed {
        /// The fencing epoch.
        epoch: u64,
        /// Groups re-homed.
        n_groups: u64,
        /// The dead shard.
        from: u32,
        /// The adopting slot.
        to: u32,
    },
    /// A worker checkpoint could not be read during permanent-death
    /// re-homing; that worker hands off cold.
    CheckpointUnreadable {
        /// The worker whose checkpoint was unreadable.
        worker: u32,
        /// The read error, rendered.
        detail: String,
    },
    /// The aggregate convergence signal crossed its target.
    EarlyStop {
        /// Aggregate max CI width at the crossing.
        max_ci: f64,
        /// Aggregate max quantile step at the crossing.
        max_qstep: f64,
        /// Remaining groups cancelled.
        cancelled: u64,
    },
    /// Free-text event (anything without a dedicated variant).
    Info {
        /// The message.
        text: String,
    },
}

impl From<String> for EventKind {
    fn from(text: String) -> Self {
        EventKind::Info { text }
    }
}

impl From<&str> for EventKind {
    fn from(text: &str) -> Self {
        EventKind::Info { text: text.into() }
    }
}

impl EventKind {
    /// The legacy free-text form of the event — character-compatible with
    /// the strings the supervisors logged before the journal was typed.
    pub fn render(&self) -> String {
        match self {
            EventKind::GroupTimeout { group } => {
                format!("server reported group {group} unresponsive (timeout)")
            }
            EventKind::GroupRestarted { group, instance } => {
                format!("restarting group {group} as instance {instance}")
            }
            EventKind::GroupDied {
                group,
                instance,
                detail,
            } => format!("group {group} instance {instance} ended abnormally: {detail}"),
            EventKind::GroupZombie { group, instance } => {
                format!("group {group} instance {instance} is a zombie (running, never reported)")
            }
            EventKind::GroupAbandoned { group, retries } => {
                format!("group {group} abandoned after {retries} retries")
            }
            EventKind::GroupResubmitted { group, instance } => {
                format!("resubmitting group {group} as instance {instance} after server restart")
            }
            EventKind::ServerRestarted => {
                "server failure detected: restarting from checkpoint".to_string()
            }
            EventKind::ServerKillInjected { finished } => {
                format!("FAULT INJECTION: killing server after {finished} finished groups")
            }
            EventKind::ShardDeathInjected {
                finished,
                rehome_to,
            } => format!(
                "FAULT INJECTION: permanent shard death after {finished} finished groups; \
                 re-homing to slot {rehome_to}"
            ),
            EventKind::MigrationFence {
                epoch,
                n_groups,
                from,
                to,
            } => {
                format!("epoch {epoch}: migrating {n_groups} groups from shard {from} to slot {to}")
            }
            EventKind::GroupsAdopted {
                epoch,
                n_groups,
                from,
            } => format!("epoch {epoch}: adopting {n_groups} groups from slot {from}"),
            EventKind::FinishedDuringFence { group, shard } => {
                format!("group {group} finished during the fence; staying on shard {shard}")
            }
            EventKind::ShardRehomed {
                epoch,
                n_groups,
                from,
                to,
            } => format!(
                "epoch {epoch}: re-homing {n_groups} groups from dead shard {from} to slot {to}"
            ),
            EventKind::CheckpointUnreadable { worker, detail } => format!(
                "worker {worker} checkpoint unreadable on permanent death ({detail}); cold hand-off"
            ),
            EventKind::EarlyStop {
                max_ci,
                max_qstep,
                cancelled,
            } => format!(
                "convergence reached (aggregate max CI width {max_ci:.4}, max quantile step \
                 {max_qstep:.4}): cancelling {cancelled} remaining groups"
            ),
            EventKind::Info { text } => text.clone(),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            EventKind::GroupTimeout { .. } => 1,
            EventKind::GroupRestarted { .. } => 2,
            EventKind::GroupDied { .. } => 3,
            EventKind::GroupZombie { .. } => 4,
            EventKind::GroupAbandoned { .. } => 5,
            EventKind::GroupResubmitted { .. } => 6,
            EventKind::ServerRestarted => 7,
            EventKind::ServerKillInjected { .. } => 8,
            EventKind::ShardDeathInjected { .. } => 9,
            EventKind::MigrationFence { .. } => 10,
            EventKind::GroupsAdopted { .. } => 11,
            EventKind::FinishedDuringFence { .. } => 12,
            EventKind::ShardRehomed { .. } => 13,
            EventKind::CheckpointUnreadable { .. } => 14,
            EventKind::EarlyStop { .. } => 15,
            EventKind::Info { .. } => 16,
        }
    }
}

/// One journal entry: what happened, where and when.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyEvent {
    /// Per-shard monotonic sequence number (ties on `at_nanos` break by
    /// `(shard, seq)` — the stable cross-shard merge order).
    pub seq: u64,
    /// Nanoseconds since the study clock's origin (shared by every shard
    /// supervisor, so timestamps are comparable across shards).
    pub at_nanos: u64,
    /// The shard slot that logged the event.
    pub shard: u32,
    /// What happened.
    pub kind: EventKind,
}

impl StudyEvent {
    /// The legacy rendered line, shard-prefixed:
    /// `"[shard <k>] <text>"`.
    pub fn render(&self) -> String {
        format!("[shard {}] {}", self.shard, self.kind.render())
    }

    /// Whether the rendered line contains `pat` — the drop-in view that
    /// keeps string-matching assertions over the journal working.
    pub fn contains(&self, pat: &str) -> bool {
        self.render().contains(pat)
    }

    /// The stable total-order key for cross-shard merges.
    pub fn order_key(&self) -> (u64, u32, u64) {
        (self.at_nanos, self.shard, self.seq)
    }

    /// Serialises the event with the fixed little-endian codec.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seq);
        buf.put_u64_le(self.at_nanos);
        buf.put_u32_le(self.shard);
        buf.put_u8(self.kind.tag());
        match &self.kind {
            EventKind::GroupTimeout { group } => buf.put_u64_le(*group),
            EventKind::GroupRestarted { group, instance }
            | EventKind::GroupResubmitted { group, instance }
            | EventKind::GroupZombie { group, instance } => {
                buf.put_u64_le(*group);
                buf.put_u32_le(*instance);
            }
            EventKind::GroupDied {
                group,
                instance,
                detail,
            } => {
                buf.put_u64_le(*group);
                buf.put_u32_le(*instance);
                put_str(buf, detail);
            }
            EventKind::GroupAbandoned { group, retries } => {
                buf.put_u64_le(*group);
                buf.put_u32_le(*retries);
            }
            EventKind::ServerRestarted => {}
            EventKind::ServerKillInjected { finished } => buf.put_u64_le(*finished),
            EventKind::ShardDeathInjected {
                finished,
                rehome_to,
            } => {
                buf.put_u64_le(*finished);
                buf.put_u32_le(*rehome_to);
            }
            EventKind::MigrationFence {
                epoch,
                n_groups,
                from,
                to,
            }
            | EventKind::ShardRehomed {
                epoch,
                n_groups,
                from,
                to,
            } => {
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*n_groups);
                buf.put_u32_le(*from);
                buf.put_u32_le(*to);
            }
            EventKind::GroupsAdopted {
                epoch,
                n_groups,
                from,
            } => {
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*n_groups);
                buf.put_u32_le(*from);
            }
            EventKind::FinishedDuringFence { group, shard } => {
                buf.put_u64_le(*group);
                buf.put_u32_le(*shard);
            }
            EventKind::CheckpointUnreadable { worker, detail } => {
                buf.put_u32_le(*worker);
                put_str(buf, detail);
            }
            EventKind::EarlyStop {
                max_ci,
                max_qstep,
                cancelled,
            } => {
                buf.put_f64_le(*max_ci);
                buf.put_f64_le(*max_qstep);
                buf.put_u64_le(*cancelled);
            }
            EventKind::Info { text } => put_str(buf, text),
        }
    }

    /// Decodes one event produced by [`encode_into`](Self::encode_into).
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        let seq = get_u64(buf, "event seq")?;
        let at_nanos = get_u64(buf, "event timestamp")?;
        let shard = get_u32(buf, "event shard")?;
        let tag = get_u8(buf, "event tag")?;
        let kind = match tag {
            1 => EventKind::GroupTimeout {
                group: get_u64(buf, "group id")?,
            },
            2 => EventKind::GroupRestarted {
                group: get_u64(buf, "group id")?,
                instance: get_u32(buf, "instance")?,
            },
            3 => EventKind::GroupDied {
                group: get_u64(buf, "group id")?,
                instance: get_u32(buf, "instance")?,
                detail: get_str(buf, "detail")?,
            },
            4 => EventKind::GroupZombie {
                group: get_u64(buf, "group id")?,
                instance: get_u32(buf, "instance")?,
            },
            5 => EventKind::GroupAbandoned {
                group: get_u64(buf, "group id")?,
                retries: get_u32(buf, "retries")?,
            },
            6 => EventKind::GroupResubmitted {
                group: get_u64(buf, "group id")?,
                instance: get_u32(buf, "instance")?,
            },
            7 => EventKind::ServerRestarted,
            8 => EventKind::ServerKillInjected {
                finished: get_u64(buf, "finished")?,
            },
            9 => EventKind::ShardDeathInjected {
                finished: get_u64(buf, "finished")?,
                rehome_to: get_u32(buf, "rehome target")?,
            },
            10 => EventKind::MigrationFence {
                epoch: get_u64(buf, "epoch")?,
                n_groups: get_u64(buf, "group count")?,
                from: get_u32(buf, "source")?,
                to: get_u32(buf, "target")?,
            },
            11 => EventKind::GroupsAdopted {
                epoch: get_u64(buf, "epoch")?,
                n_groups: get_u64(buf, "group count")?,
                from: get_u32(buf, "source")?,
            },
            12 => EventKind::FinishedDuringFence {
                group: get_u64(buf, "group id")?,
                shard: get_u32(buf, "shard")?,
            },
            13 => EventKind::ShardRehomed {
                epoch: get_u64(buf, "epoch")?,
                n_groups: get_u64(buf, "group count")?,
                from: get_u32(buf, "source")?,
                to: get_u32(buf, "target")?,
            },
            14 => EventKind::CheckpointUnreadable {
                worker: get_u32(buf, "worker")?,
                detail: get_str(buf, "detail")?,
            },
            15 => EventKind::EarlyStop {
                max_ci: get_f64(buf, "max ci")?,
                max_qstep: get_f64(buf, "max qstep")?,
                cancelled: get_u64(buf, "cancelled")?,
            },
            16 => EventKind::Info {
                text: get_str(buf, "text")?,
            },
            _ => {
                return Err(WireError::Invalid {
                    what: "unknown event tag",
                })
            }
        };
        Ok(Self {
            seq,
            at_nanos,
            shard,
            kind,
        })
    }
}

/// Encodes a whole journal (`u32` count + events).
pub fn encode_events(events: &[StudyEvent], buf: &mut BytesMut) {
    buf.put_u32_le(events.len() as u32);
    for e in events {
        e.encode_into(buf);
    }
}

/// Decodes a journal produced by [`encode_events`].
pub fn decode_events(buf: &mut &[u8]) -> WireResult<Vec<StudyEvent>> {
    let n = get_u32(buf, "event count")?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        out.push(StudyEvent::decode_from(buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<EventKind> {
        vec![
            EventKind::GroupTimeout { group: 3 },
            EventKind::GroupRestarted {
                group: 7,
                instance: 1,
            },
            EventKind::GroupDied {
                group: 2,
                instance: 4,
                detail: "Died { code: 1 }".into(),
            },
            EventKind::GroupZombie {
                group: 9,
                instance: 0,
            },
            EventKind::GroupAbandoned {
                group: 5,
                retries: 3,
            },
            EventKind::GroupResubmitted {
                group: 1,
                instance: 2,
            },
            EventKind::ServerRestarted,
            EventKind::ServerKillInjected { finished: 4 },
            EventKind::ShardDeathInjected {
                finished: 2,
                rehome_to: 1,
            },
            EventKind::MigrationFence {
                epoch: 1,
                n_groups: 3,
                from: 0,
                to: 2,
            },
            EventKind::GroupsAdopted {
                epoch: 1,
                n_groups: 3,
                from: 0,
            },
            EventKind::FinishedDuringFence { group: 6, shard: 1 },
            EventKind::ShardRehomed {
                epoch: 2,
                n_groups: 4,
                from: 1,
                to: 0,
            },
            EventKind::CheckpointUnreadable {
                worker: 2,
                detail: "io: not found".into(),
            },
            EventKind::EarlyStop {
                max_ci: 0.02,
                max_qstep: 0.004,
                cancelled: 5,
            },
            EventKind::Info {
                text: "free text".into(),
            },
        ]
    }

    #[test]
    fn every_kind_round_trips() {
        let events: Vec<StudyEvent> = every_kind()
            .into_iter()
            .enumerate()
            .map(|(i, kind)| StudyEvent {
                seq: i as u64,
                at_nanos: 1000 + i as u64,
                shard: (i % 3) as u32,
                kind,
            })
            .collect();
        let mut buf = BytesMut::new();
        encode_events(&events, &mut buf);
        let mut slice: &[u8] = &buf;
        let back = decode_events(&mut slice).unwrap();
        assert_eq!(back, events);
        assert!(slice.is_empty());
    }

    #[test]
    fn renders_preserve_legacy_substrings() {
        let kill = EventKind::ServerKillInjected { finished: 4 };
        assert!(kill.render().contains("FAULT INJECTION"));
        let death = EventKind::ShardDeathInjected {
            finished: 2,
            rehome_to: 1,
        };
        assert!(death.render().contains("permanent shard death"));
        let adopt = EventKind::GroupsAdopted {
            epoch: 1,
            n_groups: 3,
            from: 0,
        };
        assert!(adopt.render().contains("adopting"));
        assert!(adopt.render().contains("groups from slot"));
        let zombie = EventKind::GroupZombie {
            group: 9,
            instance: 0,
        };
        assert!(zombie.render().contains("zombie"));
        let ev = StudyEvent {
            seq: 0,
            at_nanos: 0,
            shard: 2,
            kind: kill,
        };
        assert!(ev.contains("[shard 2]"));
        assert!(ev.contains("FAULT INJECTION"));
    }

    #[test]
    fn order_key_is_total_and_stable() {
        let mk = |at, shard, seq| StudyEvent {
            seq,
            at_nanos: at,
            shard,
            kind: EventKind::ServerRestarted,
        };
        let mut events = [mk(5, 1, 0), mk(5, 0, 1), mk(3, 2, 0), mk(5, 0, 0)];
        events.sort_by_key(|e| e.order_key());
        let keys: Vec<_> = events.iter().map(|e| e.order_key()).collect();
        assert_eq!(keys, vec![(3, 2, 0), (5, 0, 0), (5, 0, 1), (5, 1, 0)]);
    }
}
