//! Tube-bundle geometry (paper Fig. 5): water flows from the left between
//! the tubes of a staggered cylinder array and exits to the right.

use melissa_mesh::StructuredMesh;

/// A staggered array of cylindrical tubes (axes along z) inside a
/// rectangular channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TubeBundle {
    /// Tube radius.
    pub radius: f64,
    /// Horizontal pitch between tube columns.
    pub pitch_x: f64,
    /// Vertical pitch between tubes within a column.
    pub pitch_y: f64,
    /// x-position of the first tube column.
    pub x_first: f64,
    /// x-position past which there are no tubes.
    pub x_last: f64,
}

impl TubeBundle {
    /// The default bundle used by the reproduction's use case: a staggered
    /// array occupying the central portion of a channel of size `lx × ly`.
    pub fn for_channel(lx: f64, ly: f64) -> Self {
        let pitch_y = ly / 4.0;
        Self {
            radius: 0.3 * pitch_y,
            pitch_x: pitch_y,
            pitch_y,
            x_first: 0.3 * lx,
            x_last: 0.7 * lx,
        }
    }

    /// Whether the point `(x, y)` lies inside a tube.
    pub fn is_solid(&self, x: f64, y: f64) -> bool {
        if x < self.x_first - self.radius || x > self.x_last + self.radius {
            return false;
        }
        // Column index and stagger offset: odd columns shifted by half a
        // vertical pitch.
        let col = ((x - self.x_first) / self.pitch_x).round() as i64;
        // Check the two nearest columns (a point may be within radius of a
        // neighbouring column's tube).
        for c in [col - 1, col, col + 1] {
            let cx = self.x_first + c as f64 * self.pitch_x;
            if cx < self.x_first - 1e-12 || cx > self.x_last + 1e-12 {
                continue;
            }
            let offset = if c.rem_euclid(2) == 1 {
                0.5 * self.pitch_y
            } else {
                0.0
            };
            // Nearest tube centre in this column.
            let rel = (y - offset) / self.pitch_y;
            for r in [rel.floor(), rel.ceil()] {
                let cy = offset + r * self.pitch_y;
                let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                if d2 <= self.radius * self.radius {
                    return true;
                }
            }
        }
        false
    }

    /// Builds the per-cell solid mask for a mesh (`true` = inside a tube).
    pub fn solid_mask(&self, mesh: &StructuredMesh) -> Vec<bool> {
        let (nx, ny, nz) = mesh.dims();
        let mut mask = vec![false; mesh.n_cells()];
        // Tubes are z-invariant: compute one xy plane and replicate.
        for j in 0..ny {
            for i in 0..nx {
                let c = mesh.cell_center(i, j, 0);
                if self.is_solid(c[0], c[1]) {
                    for k in 0..nz {
                        mask[mesh.cell_id(i, j, k)] = true;
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_bundle_blocks_a_reasonable_fraction() {
        let mesh = StructuredMesh::new(64, 32, 2, 2.0, 1.0, 0.1);
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        let mask = bundle.solid_mask(&mesh);
        let solid = mask.iter().filter(|&&s| s).count();
        let frac = solid as f64 / mask.len() as f64;
        assert!(frac > 0.02 && frac < 0.4, "solid fraction {frac}");
    }

    #[test]
    fn inlet_and_outlet_regions_are_clear() {
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        for y in [0.1, 0.5, 0.9] {
            assert!(!bundle.is_solid(0.05, y), "inlet blocked at y={y}");
            assert!(!bundle.is_solid(1.95, y), "outlet blocked at y={y}");
        }
    }

    #[test]
    fn tube_centres_are_solid() {
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        // First column (even) has tubes at y = m * pitch_y.
        assert!(bundle.is_solid(bundle.x_first, bundle.pitch_y));
        assert!(bundle.is_solid(bundle.x_first, 2.0 * bundle.pitch_y));
        // Second column is staggered by half a pitch.
        let x2 = bundle.x_first + bundle.pitch_x;
        assert!(bundle.is_solid(x2, 1.5 * bundle.pitch_y));
    }

    #[test]
    fn mask_is_z_invariant() {
        let mesh = StructuredMesh::new(32, 16, 3, 2.0, 1.0, 0.3);
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        let mask = bundle.solid_mask(&mesh);
        let (nx, ny, _) = mesh.dims();
        for j in 0..ny {
            for i in 0..nx {
                let a = mask[mesh.cell_id(i, j, 0)];
                for k in 1..3 {
                    assert_eq!(a, mask[mesh.cell_id(i, j, k)]);
                }
            }
        }
    }
}
