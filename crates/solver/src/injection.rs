//! Dye-injection boundary conditions — the study's six varying parameters
//! (paper Section 5.2):
//!
//! 1. dye concentration on the upper inlet,
//! 2. dye concentration on the lower inlet,
//! 3. width of the injection on the upper inlet,
//! 4. width of the injection on the lower inlet,
//! 5. duration of the injection on the upper inlet,
//! 6. duration of the injection on the lower inlet.

use melissa_sobol::{Parameter, ParameterSpace};

/// Canonical order of the six parameters in a study row.
pub const PARAM_NAMES: [&str; 6] = [
    "concentration_upper",
    "concentration_lower",
    "width_upper",
    "width_lower",
    "duration_upper",
    "duration_lower",
];

/// The six injection parameters of one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionParams {
    /// Dye concentration injected by the upper injector.
    pub conc_upper: f64,
    /// Dye concentration injected by the lower injector.
    pub conc_lower: f64,
    /// Injection width of the upper injector (fraction of channel height).
    pub width_upper: f64,
    /// Injection width of the lower injector (fraction of channel height).
    pub width_lower: f64,
    /// Injection duration of the upper injector (fraction of simulated time).
    pub dur_upper: f64,
    /// Injection duration of the lower injector (fraction of simulated time).
    pub dur_lower: f64,
}

impl InjectionParams {
    /// Builds from a design row in [`PARAM_NAMES`] order.
    ///
    /// # Panics
    /// Panics if the row does not have six entries.
    pub fn from_row(row: &[f64]) -> Self {
        assert_eq!(row.len(), 6, "use case has six parameters");
        Self {
            conc_upper: row[0],
            conc_lower: row[1],
            width_upper: row[2],
            width_lower: row[3],
            dur_upper: row[4],
            dur_lower: row[5],
        }
    }

    /// The study's parameter space (marginal laws of the six parameters).
    pub fn parameter_space() -> ParameterSpace {
        ParameterSpace::new(vec![
            Parameter::uniform(PARAM_NAMES[0], 0.5, 2.0),
            Parameter::uniform(PARAM_NAMES[1], 0.5, 2.0),
            Parameter::uniform(PARAM_NAMES[2], 0.05, 0.40),
            Parameter::uniform(PARAM_NAMES[3], 0.05, 0.40),
            Parameter::uniform(PARAM_NAMES[4], 0.2, 1.0),
            Parameter::uniform(PARAM_NAMES[5], 0.2, 1.0),
        ])
    }
}

/// Time-dependent inlet concentration profile produced by the two
/// injectors.
///
/// The upper injector is centred at `y = 0.75·ly`, the lower at
/// `y = 0.25·ly`; each spans `width · ly` vertically and injects its
/// concentration until its duration (a fraction of total simulated time)
/// elapses.
#[derive(Debug, Clone, PartialEq)]
pub struct InletProfile {
    params: InjectionParams,
    ly: f64,
    total_time: f64,
}

impl InletProfile {
    /// Creates the profile for a channel of height `ly` and a simulation
    /// horizon of `total_time`.
    pub fn new(params: InjectionParams, ly: f64, total_time: f64) -> Self {
        assert!(ly > 0.0 && total_time > 0.0);
        Self {
            params,
            ly,
            total_time,
        }
    }

    /// Inlet dye concentration at height `y` and time `t`.
    pub fn concentration(&self, y: f64, t: f64) -> f64 {
        let p = &self.params;
        let mut c = 0.0;
        let upper_centre = 0.75 * self.ly;
        let lower_centre = 0.25 * self.ly;
        if t <= p.dur_upper * self.total_time
            && (y - upper_centre).abs() <= 0.5 * p.width_upper * self.ly
        {
            c += p.conc_upper;
        }
        if t <= p.dur_lower * self.total_time
            && (y - lower_centre).abs() <= 0.5 * p.width_lower * self.ly
        {
            c += p.conc_lower;
        }
        c
    }

    /// The underlying parameters.
    pub fn params(&self) -> &InjectionParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> InjectionParams {
        InjectionParams {
            conc_upper: 1.5,
            conc_lower: 0.8,
            width_upper: 0.2,
            width_lower: 0.1,
            dur_upper: 0.5,
            dur_lower: 1.0,
        }
    }

    #[test]
    fn injectors_cover_their_bands() {
        let prof = InletProfile::new(params(), 1.0, 10.0);
        // Upper band: 0.75 ± 0.1.
        assert_eq!(prof.concentration(0.75, 0.0), 1.5);
        assert_eq!(prof.concentration(0.84, 0.0), 1.5);
        assert_eq!(prof.concentration(0.87, 0.0), 0.0);
        // Lower band: 0.25 ± 0.05.
        assert_eq!(prof.concentration(0.25, 0.0), 0.8);
        assert_eq!(prof.concentration(0.31, 0.0), 0.0);
        // Middle of channel: nothing.
        assert_eq!(prof.concentration(0.5, 0.0), 0.0);
    }

    #[test]
    fn durations_cut_off_injection() {
        let prof = InletProfile::new(params(), 1.0, 10.0);
        // Upper stops at t = 5; lower runs the whole horizon.
        assert_eq!(prof.concentration(0.75, 4.9), 1.5);
        assert_eq!(prof.concentration(0.75, 5.1), 0.0);
        assert_eq!(prof.concentration(0.25, 9.9), 0.8);
    }

    #[test]
    fn row_roundtrip_matches_field_order() {
        let row = [1.0, 2.0, 0.3, 0.4, 0.5, 0.6];
        let p = InjectionParams::from_row(&row);
        assert_eq!(p.conc_upper, 1.0);
        assert_eq!(p.conc_lower, 2.0);
        assert_eq!(p.width_upper, 0.3);
        assert_eq!(p.width_lower, 0.4);
        assert_eq!(p.dur_upper, 0.5);
        assert_eq!(p.dur_lower, 0.6);
    }

    #[test]
    fn parameter_space_has_six_dimensions_with_names() {
        let space = InjectionParams::parameter_space();
        assert_eq!(space.dim(), 6);
        for (k, name) in PARAM_NAMES.iter().enumerate() {
            assert_eq!(space.name(k), *name);
        }
    }

    #[test]
    fn wide_injectors_may_overlap_and_sum() {
        let p = InjectionParams {
            conc_upper: 1.0,
            conc_lower: 1.0,
            width_upper: 1.0,
            width_lower: 1.0,
            dur_upper: 1.0,
            dur_lower: 1.0,
        };
        let prof = InletProfile::new(p, 1.0, 1.0);
        assert_eq!(prof.concentration(0.5, 0.0), 2.0);
    }
}
