//! The steady-flow *pre-run*: a potential-flow solve around the tube
//! bundle.
//!
//! The paper first runs a single 4000-timestep Code_Saturne simulation to
//! obtain a steady flow, then freezes velocity/pressure/turbulence and
//! solves only the dye scalar on top (Section 5.2).  The reproduction's
//! pre-run solves the Laplace equation for a velocity potential `φ` with
//! SOR on the solid-masked mesh (inlet/outlet Dirichlet, walls and tube
//! surfaces zero-flux), then differentiates `φ` into **face volume fluxes**.
//! Because the discrete Laplacian is built from exactly those face
//! couplings, the resulting flux field is discretely divergence-free —
//! which the conservation tests rely on.

use melissa_mesh::StructuredMesh;

use crate::bundle::TubeBundle;

/// Frozen steady flow: face volume fluxes over a solid-masked mesh.
///
/// Flux arrays are indexed by face:
/// `flux_x[i + (nx+1)·(j + ny·k)]` is the volume flux (positive toward +x)
/// through the face at `x = i·dx`; similarly for y (`ny+1` faces) and z.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenFlow {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Face fluxes along x, `(nx+1)·ny·nz` entries.
    pub flux_x: Vec<f64>,
    /// Face fluxes along y, `nx·(ny+1)·nz` entries.
    pub flux_y: Vec<f64>,
    /// Face fluxes along z, `nx·ny·(nz+1)` entries.
    pub flux_z: Vec<f64>,
    /// Per-cell solid mask.
    pub solid: Vec<bool>,
    /// Number of SOR iterations the pre-run took to converge.
    pub prerun_iterations: usize,
}

impl FrozenFlow {
    /// Index into `flux_x`.
    #[inline]
    pub fn fx(&self, i: usize, j: usize, k: usize) -> usize {
        i + (self.nx + 1) * (j + self.ny * k)
    }

    /// Index into `flux_y`.
    #[inline]
    pub fn fy(&self, i: usize, j: usize, k: usize) -> usize {
        i + self.nx * (j + (self.ny + 1) * k)
    }

    /// Index into `flux_z`.
    #[inline]
    pub fn fz(&self, i: usize, j: usize, k: usize) -> usize {
        i + self.nx * (j + self.ny * k)
    }

    /// Solves the pre-run on `mesh` with the given bundle and mean inlet
    /// velocity, to relative SOR tolerance `tol`.
    ///
    /// # Panics
    /// Panics if the inlet column contains no fluid cells.
    pub fn solve(mesh: &StructuredMesh, bundle: &TubeBundle, u_inlet: f64, tol: f64) -> Self {
        let (nx, ny, nz) = mesh.dims();
        let (dx, dy, dz) = mesh.spacing();
        let solid = bundle.solid_mask(mesh);

        // Face coupling coefficients a = A / d.
        let ax = dy * dz / dx;
        let ay = dx * dz / dy;
        let az = dx * dy / dz;

        // SOR over fluid cells.  Dirichlet ghosts: phi_in = 1 at x=0,
        // phi_out = 0 at x=lx (at distance dx from the first/last centres).
        let (phi_in, phi_out) = (1.0, 0.0);
        let mut phi = vec![0.5; mesh.n_cells()];
        let omega = 1.85;
        let max_iters = 200_000;
        let mut iters = 0;
        loop {
            let mut max_delta: f64 = 0.0;
            let mut max_phi: f64 = 1e-30;
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        let c = mesh.cell_id(i, j, k);
                        if solid[c] {
                            continue;
                        }
                        let mut num = 0.0;
                        let mut den = 0.0;
                        // x− neighbour or inlet ghost.
                        if i == 0 {
                            num += ax * phi_in;
                            den += ax;
                        } else {
                            let n = mesh.cell_id(i - 1, j, k);
                            if !solid[n] {
                                num += ax * phi[n];
                                den += ax;
                            }
                        }
                        // x+ neighbour or outlet ghost.
                        if i == nx - 1 {
                            num += ax * phi_out;
                            den += ax;
                        } else {
                            let n = mesh.cell_id(i + 1, j, k);
                            if !solid[n] {
                                num += ax * phi[n];
                                den += ax;
                            }
                        }
                        // y neighbours (walls are zero-flux: omitted).
                        if j > 0 {
                            let n = mesh.cell_id(i, j - 1, k);
                            if !solid[n] {
                                num += ay * phi[n];
                                den += ay;
                            }
                        }
                        if j < ny - 1 {
                            let n = mesh.cell_id(i, j + 1, k);
                            if !solid[n] {
                                num += ay * phi[n];
                                den += ay;
                            }
                        }
                        // z neighbours (front/back walls zero-flux).
                        if k > 0 {
                            let n = mesh.cell_id(i, j, k - 1);
                            if !solid[n] {
                                num += az * phi[n];
                                den += az;
                            }
                        }
                        if k < nz - 1 {
                            let n = mesh.cell_id(i, j, k + 1);
                            if !solid[n] {
                                num += az * phi[n];
                                den += az;
                            }
                        }
                        if den == 0.0 {
                            continue; // isolated fluid cell
                        }
                        let new = (1.0 - omega) * phi[c] + omega * num / den;
                        max_delta = max_delta.max((new - phi[c]).abs());
                        max_phi = max_phi.max(new.abs());
                        phi[c] = new;
                    }
                }
            }
            iters += 1;
            if max_delta / max_phi < tol || iters >= max_iters {
                break;
            }
        }

        // Differentiate into face fluxes.
        let mut flow = FrozenFlow {
            nx,
            ny,
            nz,
            flux_x: vec![0.0; (nx + 1) * ny * nz],
            flux_y: vec![0.0; nx * (ny + 1) * nz],
            flux_z: vec![0.0; nx * ny * (nz + 1)],
            solid,
            prerun_iterations: iters,
        };
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..=nx {
                    let f = flow.fx(i, j, k);
                    flow.flux_x[f] = if i == 0 {
                        let c = mesh.cell_id(0, j, k);
                        if flow.solid[c] {
                            0.0
                        } else {
                            ax * (phi_in - phi[c])
                        }
                    } else if i == nx {
                        let c = mesh.cell_id(nx - 1, j, k);
                        if flow.solid[c] {
                            0.0
                        } else {
                            ax * (phi[c] - phi_out)
                        }
                    } else {
                        let l = mesh.cell_id(i - 1, j, k);
                        let r = mesh.cell_id(i, j, k);
                        if flow.solid[l] || flow.solid[r] {
                            0.0
                        } else {
                            ax * (phi[l] - phi[r])
                        }
                    };
                }
            }
        }
        for k in 0..nz {
            for j in 0..=ny {
                for i in 0..nx {
                    let f = flow.fy(i, j, k);
                    flow.flux_y[f] = if j == 0 || j == ny {
                        0.0
                    } else {
                        let l = mesh.cell_id(i, j - 1, k);
                        let r = mesh.cell_id(i, j, k);
                        if flow.solid[l] || flow.solid[r] {
                            0.0
                        } else {
                            ay * (phi[l] - phi[r])
                        }
                    };
                }
            }
        }
        for k in 0..=nz {
            for j in 0..ny {
                for i in 0..nx {
                    let f = flow.fz(i, j, k);
                    flow.flux_z[f] = if k == 0 || k == nz {
                        0.0
                    } else {
                        let l = mesh.cell_id(i, j, k - 1);
                        let r = mesh.cell_id(i, j, k);
                        if flow.solid[l] || flow.solid[r] {
                            0.0
                        } else {
                            az * (phi[l] - phi[r])
                        }
                    };
                }
            }
        }

        // Normalise to the requested mean inlet velocity.
        let inlet_flux: f64 = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(0, j, k)])
            .sum();
        assert!(inlet_flux > 0.0, "inlet is fully blocked");
        let (_, ly, lz) = mesh.extents();
        let target = u_inlet * ly * lz;
        let scale = target / inlet_flux;
        flow.flux_x.iter_mut().for_each(|f| *f *= scale);
        flow.flux_y.iter_mut().for_each(|f| *f *= scale);
        flow.flux_z.iter_mut().for_each(|f| *f *= scale);
        flow
    }

    /// Net volume outflow of a cell (discrete divergence × cell volume).
    pub fn cell_divergence(&self, mesh: &StructuredMesh, i: usize, j: usize, k: usize) -> f64 {
        let _ = mesh;
        self.flux_x[self.fx(i + 1, j, k)] - self.flux_x[self.fx(i, j, k)]
            + self.flux_y[self.fy(i, j + 1, k)]
            - self.flux_y[self.fy(i, j, k)]
            + self.flux_z[self.fz(i, j, k + 1)]
            - self.flux_z[self.fz(i, j, k)]
    }

    /// Largest stable explicit timestep for advection–diffusion on this
    /// flow (CFL + diffusion limits, with a safety factor).
    pub fn stable_dt(&self, mesh: &StructuredMesh, diffusivity: f64) -> f64 {
        let (nx, ny, nz) = mesh.dims();
        let (dx, dy, dz) = mesh.spacing();
        let vol = mesh.cell_volume();
        let mut min_dt = f64::INFINITY;
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let c = mesh.cell_id(i, j, k);
                    if self.solid[c] {
                        continue;
                    }
                    let out = self.flux_x[self.fx(i + 1, j, k)].max(0.0)
                        + (-self.flux_x[self.fx(i, j, k)]).max(0.0)
                        + self.flux_y[self.fy(i, j + 1, k)].max(0.0)
                        + (-self.flux_y[self.fy(i, j, k)]).max(0.0)
                        + self.flux_z[self.fz(i, j, k + 1)].max(0.0)
                        + (-self.flux_z[self.fz(i, j, k)]).max(0.0);
                    if out > 0.0 {
                        min_dt = min_dt.min(vol / out);
                    }
                }
            }
        }
        let diff_limit = if diffusivity > 0.0 {
            0.5 / (diffusivity * (1.0 / (dx * dx) + 1.0 / (dy * dy) + 1.0 / (dz * dz)))
        } else {
            f64::INFINITY
        };
        0.45 * min_dt.min(diff_limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (StructuredMesh, FrozenFlow) {
        let mesh = StructuredMesh::new(48, 24, 2, 2.0, 1.0, 0.1);
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        let flow = FrozenFlow::solve(&mesh, &bundle, 1.0, 1e-9);
        (mesh, flow)
    }

    #[test]
    fn flow_is_discretely_divergence_free() {
        let (mesh, flow) = setup();
        let (nx, ny, nz) = mesh.dims();
        let inlet_flux: f64 = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(0, j, k)])
            .sum();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if flow.solid[mesh.cell_id(i, j, k)] {
                        continue;
                    }
                    let div = flow.cell_divergence(&mesh, i, j, k).abs();
                    assert!(
                        div < 1e-5 * inlet_flux,
                        "divergence {div} at ({i},{j},{k}), inlet {inlet_flux}"
                    );
                }
            }
        }
    }

    #[test]
    fn inflow_equals_outflow() {
        let (mesh, flow) = setup();
        let (nx, ny, nz) = mesh.dims();
        let inlet: f64 = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(0, j, k)])
            .sum();
        let outlet: f64 = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(nx, j, k)])
            .sum();
        assert!(
            (inlet - outlet).abs() < 1e-6 * inlet,
            "inlet {inlet} outlet {outlet}"
        );
    }

    #[test]
    fn inlet_flux_matches_requested_velocity() {
        let (mesh, flow) = setup();
        let (_, ny, nz) = mesh.dims();
        let (_, ly, lz) = mesh.extents();
        let inlet: f64 = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(0, j, k)])
            .sum();
        assert!((inlet - 1.0 * ly * lz).abs() < 1e-9);
    }

    #[test]
    fn solid_faces_carry_no_flux() {
        let (mesh, flow) = setup();
        let (nx, ny, nz) = mesh.dims();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if !flow.solid[mesh.cell_id(i, j, k)] {
                        continue;
                    }
                    assert_eq!(flow.flux_x[flow.fx(i, j, k)], 0.0);
                    assert_eq!(flow.flux_x[flow.fx(i + 1, j, k)], 0.0);
                    assert_eq!(flow.flux_y[flow.fy(i, j, k)], 0.0);
                    assert_eq!(flow.flux_y[flow.fy(i, j + 1, k)], 0.0);
                }
            }
        }
    }

    #[test]
    fn flow_accelerates_between_tubes() {
        // Blockage must concentrate the flux: the peak x-face flux inside
        // the bundle exceeds the mean inlet face flux.
        let (mesh, flow) = setup();
        let (nx, ny, nz) = mesh.dims();
        let mean_inlet = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(0, j, k)])
            .sum::<f64>()
            / (ny * nz) as f64;
        let mid_i = nx / 2;
        let peak_mid = (0..nz)
            .flat_map(|k| (0..ny).map(move |j| (j, k)))
            .map(|(j, k)| flow.flux_x[flow.fx(mid_i, j, k)])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            peak_mid > 1.2 * mean_inlet,
            "peak {peak_mid} vs mean inlet {mean_inlet}"
        );
    }

    #[test]
    fn stable_dt_is_positive_and_finite() {
        let (mesh, flow) = setup();
        let dt = flow.stable_dt(&mesh, 1e-3);
        assert!(dt.is_finite() && dt > 0.0);
        // More diffusive problems require smaller steps.
        assert!(flow.stable_dt(&mesh, 1.0) < dt);
    }
}
