//! Explicit finite-volume convection–diffusion of the dye scalar on the
//! frozen flow — the equation every study simulation solves
//! (paper Section 5.2).
//!
//! First-order upwind advection + central diffusion in a *gather*
//! formulation: each cell update reads only its own and neighbour values,
//! which makes the domain-decomposed solver ([`crate::decomposed`])
//! bit-identical to the monolithic one given correct halo rows, and makes
//! interior fluxes cancel pairwise (exact discrete mass conservation,
//! asserted in the tests).

use melissa_mesh::StructuredMesh;

use crate::flow::FrozenFlow;
use crate::injection::InletProfile;

/// A window of full-width mesh rows `[j0, j1)` stored contiguously:
/// index `(i, j, k) → i + nx·((j − j0) + (j1 − j0)·k)`.
#[derive(Debug, Clone, Copy)]
pub struct RowWindow {
    /// First row (inclusive).
    pub j0: usize,
    /// Last row (exclusive).
    pub j1: usize,
}

impl RowWindow {
    /// Number of rows in the window.
    pub fn n_rows(&self) -> usize {
        self.j1 - self.j0
    }

    /// Buffer length for a mesh with `nx × * × nz` cells.
    pub fn buffer_len(&self, mesh: &StructuredMesh) -> usize {
        let (nx, _, nz) = mesh.dims();
        nx * self.n_rows() * nz
    }

    /// Buffer index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, mesh: &StructuredMesh, i: usize, j: usize, k: usize) -> usize {
        let (nx, _, _) = mesh.dims();
        debug_assert!((self.j0..self.j1).contains(&j));
        i + nx * ((j - self.j0) + self.n_rows() * k)
    }
}

/// Advances rows `[update.j0, update.j1)` by one explicit step of length
/// `dt` at time `t`, reading concentrations from `buf` (layout `window`,
/// which must contain the updated rows *and* their `j ± 1` halo rows where
/// those exist) and writing into `out` (same layout as `window`).
///
/// Rows outside `update` are left untouched in `out`.
#[allow(clippy::too_many_arguments)]
pub fn step_rows(
    mesh: &StructuredMesh,
    flow: &FrozenFlow,
    inlet: &InletProfile,
    diffusivity: f64,
    dt: f64,
    t: f64,
    window: RowWindow,
    update: RowWindow,
    buf: &[f64],
    out: &mut [f64],
) {
    let (nx, ny, nz) = mesh.dims();
    let (dx, dy, dz) = mesh.spacing();
    assert_eq!(buf.len(), window.buffer_len(mesh), "buffer length mismatch");
    assert_eq!(out.len(), window.buffer_len(mesh), "output length mismatch");
    assert!(
        window.j0 <= update.j0 && update.j1 <= window.j1,
        "update outside window"
    );
    assert!(
        update.j0 == 0 || window.j0 < update.j0,
        "missing south halo"
    );
    assert!(
        update.j1 == ny || update.j1 < window.j1,
        "missing north halo"
    );

    let inv_vol = 1.0 / mesh.cell_volume();
    // Diffusive conductances D·A/d per direction.
    let gx = diffusivity * dy * dz / dx;
    let gy = diffusivity * dx * dz / dy;
    let gz = diffusivity * dx * dy / dz;

    let at = |i: usize, j: usize, k: usize| buf[window.idx(mesh, i, j, k)];

    for k in 0..nz {
        for j in update.j0..update.j1 {
            let y = mesh.cell_center(0, j, k)[1];
            for i in 0..nx {
                let o = window.idx(mesh, i, j, k);
                let cell = mesh.cell_id(i, j, k);
                if flow.solid[cell] {
                    out[o] = 0.0;
                    continue;
                }
                let c_c = at(i, j, k);
                let mut acc = 0.0;

                // West face (positive flux enters the cell).
                let fw = flow.flux_x[flow.fx(i, j, k)];
                if i == 0 {
                    let upw = if fw >= 0.0 {
                        inlet.concentration(y, t)
                    } else {
                        c_c
                    };
                    acc += fw * upw;
                } else if !flow.solid[mesh.cell_id(i - 1, j, k)] {
                    let c_w = at(i - 1, j, k);
                    let upw = if fw >= 0.0 { c_w } else { c_c };
                    acc += fw * upw + gx * (c_w - c_c);
                }

                // East face (positive flux leaves the cell).
                let fe = flow.flux_x[flow.fx(i + 1, j, k)];
                if i == nx - 1 {
                    // Outflow: zero-gradient upwind.
                    acc -= fe * c_c;
                } else if !flow.solid[mesh.cell_id(i + 1, j, k)] {
                    let c_e = at(i + 1, j, k);
                    let upw = if fe >= 0.0 { c_c } else { c_e };
                    acc -= fe * upw;
                    acc += gx * (c_e - c_c);
                }

                // South face.
                if j > 0 {
                    let fs = flow.flux_y[flow.fy(i, j, k)];
                    if !flow.solid[mesh.cell_id(i, j - 1, k)] {
                        let c_s = at(i, j - 1, k);
                        let upw = if fs >= 0.0 { c_s } else { c_c };
                        acc += fs * upw + gy * (c_s - c_c);
                    }
                }

                // North face.
                if j < ny - 1 {
                    let fn_ = flow.flux_y[flow.fy(i, j + 1, k)];
                    if !flow.solid[mesh.cell_id(i, j + 1, k)] {
                        let c_n = at(i, j + 1, k);
                        let upw = if fn_ >= 0.0 { c_c } else { c_n };
                        acc -= fn_ * upw;
                        acc += gy * (c_n - c_c);
                    }
                }

                // Down face.
                if k > 0 {
                    let fd = flow.flux_z[flow.fz(i, j, k)];
                    if !flow.solid[mesh.cell_id(i, j, k - 1)] {
                        let c_d = at(i, j, k - 1);
                        let upw = if fd >= 0.0 { c_d } else { c_c };
                        acc += fd * upw + gz * (c_d - c_c);
                    }
                }

                // Up face.
                if k < nz - 1 {
                    let fu = flow.flux_z[flow.fz(i, j, k + 1)];
                    if !flow.solid[mesh.cell_id(i, j, k + 1)] {
                        let c_u = at(i, j, k + 1);
                        let upw = if fu >= 0.0 { c_c } else { c_u };
                        acc -= fu * upw;
                        acc += gz * (c_u - c_c);
                    }
                }

                out[o] = c_c + dt * inv_vol * acc;
            }
        }
    }
}

/// Advances a full-mesh concentration field by one step (monolithic
/// solver).  `c` and `out` are full fields in global cell-id order.
#[allow(clippy::too_many_arguments)]
pub fn step_full(
    mesh: &StructuredMesh,
    flow: &FrozenFlow,
    inlet: &InletProfile,
    diffusivity: f64,
    dt: f64,
    t: f64,
    c: &[f64],
    out: &mut [f64],
) {
    let (_, ny, _) = mesh.dims();
    let window = RowWindow { j0: 0, j1: ny };
    step_rows(
        mesh,
        flow,
        inlet,
        diffusivity,
        dt,
        t,
        window,
        window,
        c,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::TubeBundle;
    use crate::injection::InjectionParams;

    fn setup() -> (StructuredMesh, FrozenFlow, InletProfile, f64, f64) {
        let mesh = StructuredMesh::new(32, 16, 2, 2.0, 1.0, 0.125);
        let bundle = TubeBundle::for_channel(2.0, 1.0);
        let flow = FrozenFlow::solve(&mesh, &bundle, 1.0, 1e-9);
        let params = InjectionParams {
            conc_upper: 1.0,
            conc_lower: 1.0,
            width_upper: 0.3,
            width_lower: 0.3,
            dur_upper: 1.0,
            dur_lower: 1.0,
        };
        let inlet = InletProfile::new(params, 1.0, 10.0);
        let diffusivity = 1e-3;
        let dt = flow.stable_dt(&mesh, diffusivity);
        (mesh, flow, inlet, diffusivity, dt)
    }

    fn total_mass(mesh: &StructuredMesh, c: &[f64]) -> f64 {
        c.iter().sum::<f64>() * mesh.cell_volume()
    }

    #[test]
    fn concentrations_stay_bounded() {
        let (mesh, flow, inlet, d, dt) = setup();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        for s in 0..300 {
            step_full(&mesh, &flow, &inlet, d, dt, s as f64 * dt, &c, &mut next);
            std::mem::swap(&mut c, &mut next);
        }
        let max = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = c.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min >= -1e-12, "negative concentration {min}");
        assert!(
            max <= 1.0 + 1e-9,
            "overshoot {max} (monotone scheme must not overshoot inlet)"
        );
        assert!(max > 0.1, "dye never entered the domain");
    }

    #[test]
    fn mass_balance_is_exact_per_step() {
        let (mesh, flow, inlet, d, dt) = setup();
        let (nx, ny, nz) = mesh.dims();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        for s in 0..50 {
            let t = s as f64 * dt;
            step_full(&mesh, &flow, &inlet, d, dt, t, &c, &mut next);
            // Expected change: advective inflow − outflow (diffusive
            // boundary exchange is zero by construction).
            let mut boundary = 0.0;
            for k in 0..nz {
                for j in 0..ny {
                    let y = mesh.cell_center(0, j, k)[1];
                    let fin = flow.flux_x[flow.fx(0, j, k)];
                    let cin = if fin >= 0.0 {
                        inlet.concentration(y, t)
                    } else {
                        c[mesh.cell_id(0, j, k)]
                    };
                    boundary += fin * cin;
                    let fout = flow.flux_x[flow.fx(nx, j, k)];
                    boundary -= fout * c[mesh.cell_id(nx - 1, j, k)];
                }
            }
            let dm = total_mass(&mesh, &next) - total_mass(&mesh, &c);
            let expect = dt * boundary;
            assert!(
                (dm - expect).abs() < 1e-10 * (1.0 + expect.abs()),
                "step {s}: mass change {dm} vs boundary budget {expect}"
            );
            std::mem::swap(&mut c, &mut next);
        }
    }

    #[test]
    fn dye_advects_downstream() {
        let (mesh, flow, inlet, d, dt) = setup();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        let steps = (0.8 / dt) as usize; // ~0.8 time units at u≈1
        for s in 0..steps {
            step_full(&mesh, &flow, &inlet, d, dt, s as f64 * dt, &c, &mut next);
            std::mem::swap(&mut c, &mut next);
        }
        let (nx, ny, _) = mesh.dims();
        // Concentration near the inlet in the upper band must exceed the
        // concentration near the outlet (front has not fully arrived).
        let j_up = (0.75 * ny as f64) as usize;
        let near = c[mesh.cell_id(1, j_up, 0)];
        let far = c[mesh.cell_id(nx - 1, j_up, 0)];
        assert!(near > 0.5, "inlet band not filled: {near}");
        assert!(near > far, "no downstream gradient: near {near} far {far}");
    }

    #[test]
    fn solid_cells_stay_clean() {
        let (mesh, flow, inlet, d, dt) = setup();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        for s in 0..200 {
            step_full(&mesh, &flow, &inlet, d, dt, s as f64 * dt, &c, &mut next);
            std::mem::swap(&mut c, &mut next);
        }
        for (cell, (&v, &s)) in c.iter().zip(&flow.solid).enumerate() {
            if s {
                assert_eq!(v, 0.0, "solid cell {cell} contaminated");
            }
        }
    }

    #[test]
    fn z_invariant_problem_stays_z_invariant() {
        let (mesh, flow, inlet, d, dt) = setup();
        let (nx, ny, nz) = mesh.dims();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        for s in 0..100 {
            step_full(&mesh, &flow, &inlet, d, dt, s as f64 * dt, &c, &mut next);
            std::mem::swap(&mut c, &mut next);
        }
        for j in 0..ny {
            for i in 0..nx {
                let v0 = c[mesh.cell_id(i, j, 0)];
                for k in 1..nz {
                    // The SOR pre-run is Gauss–Seidel ordered, so the frozen
                    // flow is z-symmetric only to its convergence tolerance.
                    assert!(
                        (c[mesh.cell_id(i, j, k)] - v0).abs() < 1e-6,
                        "z-variance at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn row_window_update_matches_full_step() {
        let (mesh, flow, inlet, d, dt) = setup();
        let (_, ny, _) = mesh.dims();
        let mut c = mesh.zero_field();
        let mut next = mesh.zero_field();
        // Evolve a bit so the field is non-trivial.
        for s in 0..40 {
            step_full(&mesh, &flow, &inlet, d, dt, s as f64 * dt, &c, &mut next);
            std::mem::swap(&mut c, &mut next);
        }
        let t = 40.0 * dt;
        step_full(&mesh, &flow, &inlet, d, dt, t, &c, &mut next);

        // Recompute rows [3, 9) through the windowed kernel with halos.
        let window = RowWindow { j0: 2, j1: 10 };
        let update = RowWindow { j0: 3, j1: 9 };
        let full = RowWindow { j0: 0, j1: ny };
        let mut buf = vec![0.0; window.buffer_len(&mesh)];
        let (nx, _, nz) = mesh.dims();
        for k in 0..nz {
            for j in window.j0..window.j1 {
                for i in 0..nx {
                    buf[window.idx(&mesh, i, j, k)] = c[full.idx(&mesh, i, j, k)];
                }
            }
        }
        let mut out = vec![0.0; window.buffer_len(&mesh)];
        step_rows(
            &mesh, &flow, &inlet, d, dt, t, window, update, &buf, &mut out,
        );
        for k in 0..nz {
            for j in update.j0..update.j1 {
                for i in 0..nx {
                    let a = out[window.idx(&mesh, i, j, k)];
                    let b = next[full.idx(&mesh, i, j, k)];
                    assert_eq!(a, b, "mismatch at ({i},{j},{k})");
                }
            }
        }
    }
}
