//! Study configuration for the tube-bundle use case.
//!
//! The paper's experiment: 9 603 840 hexahedra, 100 timesteps, six
//! parameters, 1000 groups of 8 simulations.  The reproduction keeps the
//! same structure on a configurable (smaller) mesh; the defaults below are
//! sized so a full live study runs on a workstation.

use melissa_mesh::StructuredMesh;

use crate::bundle::TubeBundle;
use crate::flow::FrozenFlow;

/// Geometry, physics and discretisation of the use case.
#[derive(Debug, Clone, PartialEq)]
pub struct UseCaseConfig {
    /// Cells along the flow direction.
    pub nx: usize,
    /// Cells across the channel.
    pub ny: usize,
    /// Cells along the tube axes.
    pub nz: usize,
    /// Channel length.
    pub lx: f64,
    /// Channel height.
    pub ly: f64,
    /// Channel depth.
    pub lz: f64,
    /// Mean inlet velocity.
    pub u_inlet: f64,
    /// Dye diffusivity.
    pub diffusivity: f64,
    /// Number of output timesteps (the paper uses 100; every output is sent
    /// to Melissa Server).
    pub n_timesteps: usize,
    /// Total simulated time; sized so the dye front crosses the whole
    /// domain within the run (the Fig. 7 interpretation depends on it).
    pub total_time: f64,
    /// SOR tolerance of the pre-run.
    pub prerun_tol: f64,
}

impl Default for UseCaseConfig {
    fn default() -> Self {
        Self {
            nx: 64,
            ny: 32,
            nz: 4,
            lx: 2.0,
            ly: 1.0,
            lz: 0.25,
            u_inlet: 1.0,
            diffusivity: 1e-3,
            n_timesteps: 100,
            total_time: 2.5,
            prerun_tol: 1e-9,
        }
    }
}

impl UseCaseConfig {
    /// A coarse configuration for fast unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            nx: 24,
            ny: 12,
            nz: 2,
            n_timesteps: 20,
            ..Self::default()
        }
    }

    /// Builds the mesh.
    pub fn mesh(&self) -> StructuredMesh {
        StructuredMesh::new(self.nx, self.ny, self.nz, self.lx, self.ly, self.lz)
    }

    /// Builds the tube bundle for this channel.
    pub fn bundle(&self) -> TubeBundle {
        TubeBundle::for_channel(self.lx, self.ly)
    }

    /// Runs the pre-run (the frozen-flow solve).  This is the analogue of
    /// the paper's single 4000-timestep steady-state simulation.
    pub fn prerun(&self) -> FrozenFlow {
        FrozenFlow::solve(&self.mesh(), &self.bundle(), self.u_inlet, self.prerun_tol)
    }

    /// Output interval in simulated time.
    pub fn output_interval(&self) -> f64 {
        self.total_time / self.n_timesteps as f64
    }

    /// Bytes of one per-timestep field message for the whole mesh
    /// (f64 payload) — the unit of the paper's "48 TB avoided" accounting.
    pub fn field_bytes(&self) -> u64 {
        (self.nx * self.ny * self.nz * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let cfg = UseCaseConfig::default();
        let mesh = cfg.mesh();
        assert_eq!(mesh.n_cells(), 64 * 32 * 4);
        assert_eq!(cfg.field_bytes(), (64 * 32 * 4 * 8) as u64);
        assert!((cfg.output_interval() - 0.025).abs() < 1e-15);
    }

    #[test]
    fn tiny_config_is_small() {
        let cfg = UseCaseConfig::tiny();
        assert!(cfg.mesh().n_cells() < 1000);
        assert!(cfg.n_timesteps <= 20);
    }
}
