//! Rank-decomposed simulation: the MPI-like parallelisation of one solver
//! instance.
//!
//! Each Code_Saturne simulation in the paper runs on 64 cores with domain
//! partitioning; the reproduction decomposes along the `y` axis into `R`
//! rank slabs with one halo row exchanged per step.  The decomposed solver
//! is **bit-identical** to the monolithic one (asserted in tests) because
//! both use the same gather-form kernel.
//!
//! The decomposition also defines the *data chunks* each rank contributes
//! to the two-stage Melissa transfer: rank `r`'s cells form `nz` contiguous
//! global-cell-id ranges (one per z-plane), which the Melissa client
//! intersects with the server's slab partition (Fig. 4).

use std::sync::Arc;

use melissa_mesh::{CellRange, StructuredMesh};

use crate::flow::FrozenFlow;
use crate::injection::{InjectionParams, InletProfile};
use crate::transport::{step_rows, RowWindow};
use crate::usecase::UseCaseConfig;

/// State owned by one rank: its row slab plus halo rows.
#[derive(Debug, Clone)]
struct RankState {
    /// Rows this rank updates.
    own: RowWindow,
    /// Rows stored locally (own ± halo where present).
    window: RowWindow,
    /// Local concentration buffer (window layout).
    c: Vec<f64>,
    /// Scratch buffer for the next step.
    scratch: Vec<f64>,
}

/// A simulation decomposed across `R` logical ranks.
pub struct DecomposedSimulation {
    mesh: StructuredMesh,
    flow: Arc<FrozenFlow>,
    inlet: InletProfile,
    diffusivity: f64,
    dt: f64,
    substeps: usize,
    n_timesteps: usize,
    produced: usize,
    ranks: Vec<RankState>,
}

impl DecomposedSimulation {
    /// Creates a simulation split across `n_ranks` y-slabs.
    ///
    /// # Panics
    /// Panics if `n_ranks` is zero or exceeds the number of mesh rows.
    pub fn new(
        config: &UseCaseConfig,
        flow: Arc<FrozenFlow>,
        params: InjectionParams,
        n_ranks: usize,
    ) -> Self {
        let mesh = config.mesh();
        let (_, ny, _) = mesh.dims();
        assert!(
            n_ranks > 0 && n_ranks <= ny,
            "need 1..=ny ranks (ny = {ny})"
        );
        let stable = flow.stable_dt(&mesh, config.diffusivity);
        let interval = config.output_interval();
        let substeps = (interval / stable).ceil().max(1.0) as usize;
        let dt = interval / substeps as f64;
        let inlet = InletProfile::new(params, config.ly, config.total_time);

        // Even row split.
        let base = ny / n_ranks;
        let extra = ny % n_ranks;
        let mut ranks = Vec::with_capacity(n_ranks);
        let mut j = 0;
        for r in 0..n_ranks {
            let rows = base + usize::from(r < extra);
            let own = RowWindow {
                j0: j,
                j1: j + rows,
            };
            let window = RowWindow {
                j0: own.j0.saturating_sub(1),
                j1: (own.j1 + 1).min(ny),
            };
            let len = window.buffer_len(&mesh);
            ranks.push(RankState {
                own,
                window,
                c: vec![0.0; len],
                scratch: vec![0.0; len],
            });
            j += rows;
        }

        Self {
            mesh,
            flow,
            inlet,
            diffusivity: config.diffusivity,
            dt,
            substeps,
            n_timesteps: config.n_timesteps,
            produced: 0,
            ranks,
        }
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total output timesteps.
    pub fn n_timesteps(&self) -> usize {
        self.n_timesteps
    }

    /// Output timesteps produced so far.
    pub fn current_timestep(&self) -> usize {
        self.produced
    }

    /// True when all timesteps have been produced.
    pub fn finished(&self) -> bool {
        self.produced >= self.n_timesteps
    }

    /// Exchanges halo rows between neighbouring ranks (the MPI halo
    /// exchange of a real domain-decomposed solver).
    fn exchange_halos(&mut self) {
        let (nx, _, nz) = self.mesh.dims();
        for r in 0..self.ranks.len() {
            // South halo: row own.j0 − 1 lives on rank r−1.
            if self.ranks[r].own.j0 > 0 {
                let j = self.ranks[r].own.j0 - 1;
                let (left, right) = self.ranks.split_at_mut(r);
                let src = &left[r - 1];
                let dst = &mut right[0];
                for k in 0..nz {
                    for i in 0..nx {
                        let v = src.c[src.window.idx(&self.mesh, i, j, k)];
                        let d = dst.window.idx(&self.mesh, i, j, k);
                        dst.c[d] = v;
                    }
                }
            }
            // North halo: row own.j1 lives on rank r+1.
            if r + 1 < self.ranks.len() {
                let j = self.ranks[r].own.j1;
                let (left, right) = self.ranks.split_at_mut(r + 1);
                let dst = &mut left[r];
                let src = &right[0];
                for k in 0..nz {
                    for i in 0..nx {
                        let v = src.c[src.window.idx(&self.mesh, i, j, k)];
                        let d = dst.window.idx(&self.mesh, i, j, k);
                        dst.c[d] = v;
                    }
                }
            }
        }
    }

    /// Advances one output timestep (substeps × halo exchange + kernel).
    ///
    /// # Panics
    /// Panics if called after the simulation finished.
    pub fn advance(&mut self) {
        assert!(!self.finished(), "simulation already finished");
        let t0 = self.produced as f64 * self.substeps as f64 * self.dt;
        for s in 0..self.substeps {
            let t = t0 + s as f64 * self.dt;
            self.exchange_halos();
            for rank in &mut self.ranks {
                step_rows(
                    &self.mesh,
                    &self.flow,
                    &self.inlet,
                    self.diffusivity,
                    self.dt,
                    t,
                    rank.window,
                    rank.own,
                    &rank.c,
                    &mut rank.scratch,
                );
                // Keep halo rows in scratch coherent for the swap (they are
                // refreshed at the next exchange anyway).
                std::mem::swap(&mut rank.c, &mut rank.scratch);
            }
        }
        self.produced += 1;
    }

    /// The contiguous global-cell-id chunks owned by `rank`, with their
    /// current values — exactly what the rank hands to the Melissa client
    /// at each timestep.
    pub fn rank_chunks(&self, rank: usize) -> Vec<(CellRange, Vec<f64>)> {
        let (nx, ny, nz) = self.mesh.dims();
        let state = &self.ranks[rank];
        let rows = state.own.n_rows();
        let mut out = Vec::with_capacity(nz);
        for k in 0..nz {
            let start = self.mesh.cell_id(0, state.own.j0, k);
            let len = nx * rows;
            let mut values = Vec::with_capacity(len);
            for j in state.own.j0..state.own.j1 {
                for i in 0..nx {
                    values.push(state.c[state.window.idx(&self.mesh, i, j, k)]);
                }
            }
            debug_assert!(start + len <= nx * ny * nz);
            out.push((CellRange { start, len }, values));
        }
        out
    }

    /// Assembles the full global field from all ranks (for verification).
    pub fn assemble_field(&self) -> Vec<f64> {
        let mut field = self.mesh.zero_field();
        for r in 0..self.ranks.len() {
            for (range, values) in self.rank_chunks(r) {
                field[range.start..range.end()].copy_from_slice(&values);
            }
        }
        field
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{OutputMode, Simulation};

    fn params() -> InjectionParams {
        InjectionParams {
            conc_upper: 1.3,
            conc_lower: 0.7,
            width_upper: 0.25,
            width_lower: 0.35,
            dur_upper: 0.6,
            dur_lower: 0.9,
        }
    }

    #[test]
    fn decomposed_matches_monolithic_bit_for_bit() {
        let cfg = UseCaseConfig::tiny();
        let flow = Arc::new(cfg.prerun());
        for n_ranks in [1usize, 2, 3, 5] {
            let mut mono = Simulation::new(&cfg, flow.clone(), params(), OutputMode::NoOutput);
            let mut deco = DecomposedSimulation::new(&cfg, flow.clone(), params(), n_ranks);
            for _ in 0..cfg.n_timesteps {
                mono.advance();
                deco.advance();
            }
            assert_eq!(
                deco.assemble_field(),
                mono.field(),
                "rank count {n_ranks} diverged from monolithic"
            );
        }
    }

    #[test]
    fn rank_chunks_tile_the_mesh_exactly() {
        let cfg = UseCaseConfig::tiny();
        let flow = Arc::new(cfg.prerun());
        let deco = DecomposedSimulation::new(&cfg, flow, params(), 3);
        let mesh = cfg.mesh();
        let mut covered = vec![false; mesh.n_cells()];
        for r in 0..deco.n_ranks() {
            for (range, values) in deco.rank_chunks(r) {
                assert_eq!(range.len, values.len());
                for c in range.iter() {
                    assert!(!covered[c], "cell {c} covered twice");
                    covered[c] = true;
                }
            }
        }
        assert!(covered.into_iter().all(|x| x));
    }

    #[test]
    #[should_panic(expected = "ranks")]
    fn too_many_ranks_panics() {
        let cfg = UseCaseConfig::tiny();
        let flow = Arc::new(cfg.prerun());
        DecomposedSimulation::new(&cfg, flow, params(), 1000);
    }
}
