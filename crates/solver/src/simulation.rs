//! A complete study simulation with the paper's three output modes.
//!
//! Performance Section 5.3 compares:
//! * **no output** — the solver runs without producing any output (best
//!   achievable time),
//! * **classical** — every timestep's field is written to the file system
//!   (EnSight-like; the intermediate files Melissa avoids),
//! * **in transit** — every timestep's field is handed to a sink (the
//!   Melissa client) and then discarded.

use std::path::PathBuf;
use std::sync::Arc;

use melissa_mesh::writer::write_raw_field;
use melissa_mesh::StructuredMesh;

use crate::flow::FrozenFlow;
use crate::injection::{InjectionParams, InletProfile};
use crate::transport::step_full;
use crate::usecase::UseCaseConfig;

/// Where a simulation's per-timestep fields go.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputMode {
    /// Discard outputs (reference best case).
    NoOutput,
    /// Write one raw field file per timestep into the directory
    /// (`<dir>/ts_<n>.bin`) — the classical intermediate-file workflow.
    Classical {
        /// Output directory (created on first write).
        dir: PathBuf,
    },
    /// The caller consumes each timestep's field (in transit processing).
    InTransit,
}

/// One running simulation instance (one member of a simulation group).
pub struct Simulation {
    mesh: StructuredMesh,
    flow: Arc<FrozenFlow>,
    inlet: InletProfile,
    diffusivity: f64,
    /// Internal stable step.
    dt: f64,
    /// Internal steps per output timestep.
    substeps: usize,
    /// Output timesteps to produce.
    n_timesteps: usize,
    /// Output timesteps produced so far.
    produced: usize,
    mode: OutputMode,
    /// Bytes written by classical mode.
    bytes_written: u64,
    c: Vec<f64>,
    scratch: Vec<f64>,
}

impl Simulation {
    /// Creates a simulation of `config` on the shared frozen flow with one
    /// parameter set.
    ///
    /// # Panics
    /// Panics if the flow's mesh does not match the config.
    pub fn new(
        config: &UseCaseConfig,
        flow: Arc<FrozenFlow>,
        params: InjectionParams,
        mode: OutputMode,
    ) -> Self {
        let mesh = config.mesh();
        assert_eq!(flow.solid.len(), mesh.n_cells(), "flow/mesh mismatch");
        let stable = flow.stable_dt(&mesh, config.diffusivity);
        let interval = config.output_interval();
        let substeps = (interval / stable).ceil().max(1.0) as usize;
        let dt = interval / substeps as f64;
        let inlet = InletProfile::new(params, config.ly, config.total_time);
        let c = mesh.zero_field();
        let scratch = mesh.zero_field();
        Self {
            mesh,
            flow,
            inlet,
            diffusivity: config.diffusivity,
            dt,
            substeps,
            n_timesteps: config.n_timesteps,
            produced: 0,
            mode,
            bytes_written: 0,
            c,
            scratch,
        }
    }

    /// Total output timesteps this simulation will produce.
    pub fn n_timesteps(&self) -> usize {
        self.n_timesteps
    }

    /// Output timesteps produced so far.
    pub fn current_timestep(&self) -> usize {
        self.produced
    }

    /// Internal sub-steps per output timestep.
    pub fn substeps(&self) -> usize {
        self.substeps
    }

    /// True when all timesteps have been produced.
    pub fn finished(&self) -> bool {
        self.produced >= self.n_timesteps
    }

    /// Bytes written to disk so far (classical mode only).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// The current concentration field.
    pub fn field(&self) -> &[f64] {
        &self.c
    }

    /// Advances one *output* timestep (several internal stable steps) and
    /// returns the new field.  In classical mode the field is also written
    /// to disk.
    ///
    /// # Panics
    /// Panics if called after the simulation finished.
    pub fn advance(&mut self) -> &[f64] {
        assert!(!self.finished(), "simulation already finished");
        let t0 = self.produced as f64 * self.substeps as f64 * self.dt;
        for s in 0..self.substeps {
            let t = t0 + s as f64 * self.dt;
            step_full(
                &self.mesh,
                &self.flow,
                &self.inlet,
                self.diffusivity,
                self.dt,
                t,
                &self.c,
                &mut self.scratch,
            );
            std::mem::swap(&mut self.c, &mut self.scratch);
        }
        self.produced += 1;
        if let OutputMode::Classical { dir } = &self.mode {
            std::fs::create_dir_all(dir).expect("create classical output dir");
            let path = dir.join(format!("ts_{:04}.bin", self.produced - 1));
            self.bytes_written += write_raw_field(&path, &self.c).expect("classical write");
        }
        &self.c
    }

    /// Runs all remaining timesteps, invoking `sink(timestep, field)` after
    /// each one (the in transit hook; pass a no-op for the other modes).
    pub fn run<F: FnMut(usize, &[f64])>(&mut self, mut sink: F) {
        while !self.finished() {
            self.advance();
            sink(self.produced - 1, &self.c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::InjectionParams;

    fn config() -> UseCaseConfig {
        UseCaseConfig::tiny()
    }

    fn params() -> InjectionParams {
        InjectionParams {
            conc_upper: 1.0,
            conc_lower: 1.0,
            width_upper: 0.3,
            width_lower: 0.3,
            dur_upper: 1.0,
            dur_lower: 1.0,
        }
    }

    #[test]
    fn produces_exactly_n_timesteps() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let mut sim = Simulation::new(&cfg, flow, params(), OutputMode::NoOutput);
        let mut count = 0;
        sim.run(|ts, field| {
            assert_eq!(ts, count);
            assert_eq!(field.len(), cfg.mesh().n_cells());
            count += 1;
        });
        assert_eq!(count, cfg.n_timesteps);
        assert!(sim.finished());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn advancing_past_the_end_panics() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let mut sim = Simulation::new(&cfg, flow, params(), OutputMode::NoOutput);
        sim.run(|_, _| {});
        sim.advance();
    }

    #[test]
    fn classical_mode_writes_one_file_per_timestep() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let dir =
            std::env::temp_dir().join(format!("melissa-classical-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut sim = Simulation::new(
            &cfg,
            flow,
            params(),
            OutputMode::Classical { dir: dir.clone() },
        );
        sim.run(|_, _| {});
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, cfg.n_timesteps);
        assert_eq!(
            sim.bytes_written(),
            (cfg.n_timesteps as u64) * cfg.field_bytes(),
            "every timestep dumps the whole field"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_parameters_give_identical_results() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let run = |flow: Arc<FrozenFlow>| {
            let mut sim = Simulation::new(&cfg, flow, params(), OutputMode::NoOutput);
            sim.run(|_, _| {});
            sim.field().to_vec()
        };
        assert_eq!(run(flow.clone()), run(flow));
    }

    #[test]
    fn different_parameters_give_different_results() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let mut a = Simulation::new(&cfg, flow.clone(), params(), OutputMode::NoOutput);
        a.run(|_, _| {});
        let mut p2 = params();
        p2.conc_upper = 2.0;
        let mut b = Simulation::new(&cfg, flow, p2, OutputMode::NoOutput);
        b.run(|_, _| {});
        assert_ne!(a.field(), b.field());
    }

    #[test]
    fn duration_parameter_controls_late_time_injection() {
        let cfg = config();
        let flow = Arc::new(cfg.prerun());
        let mut short = params();
        short.dur_upper = 0.2;
        short.dur_lower = 0.2;
        let mut s_short = Simulation::new(&cfg, flow.clone(), short, OutputMode::NoOutput);
        s_short.run(|_, _| {});
        let mut s_long = Simulation::new(&cfg, flow, params(), OutputMode::NoOutput);
        s_long.run(|_, _| {});
        let mass = |f: &[f64]| f.iter().sum::<f64>();
        assert!(
            mass(s_long.field()) > mass(s_short.field()),
            "longer injection must leave more dye at the end"
        );
    }
}
