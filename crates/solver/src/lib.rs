//! # melissa-solver — tube-bundle convection–diffusion solver
//!
//! The simulation substrate of the Melissa reproduction: a from-scratch
//! finite-volume solver for the paper's use case (Section 5.2) — water flow
//! through a tube bundle with dye injected along the inlet.
//!
//! The paper's study deliberately *freezes* the flow: a 4000-timestep
//! Code_Saturne pre-run produces steady velocity/pressure/turbulence
//! fields, and every study simulation then solves **only** the
//! convection–diffusion equation of the dye scalar on those frozen fields.
//! This crate mirrors that structure exactly:
//!
//! * [`flow`] — the *pre-run*: a potential-flow solve (SOR on a masked
//!   Laplace problem) around the staggered tube bundle produces a
//!   discretely divergence-free frozen face-flux field;
//! * [`transport`] — the *study solver*: explicit upwind finite-volume
//!   advection + central diffusion of the dye concentration on the frozen
//!   fluxes;
//! * [`injection`] — the six varying parameters: dye concentration, width
//!   and duration of the injection on the upper and lower inlet injectors;
//! * [`simulation`] — a complete simulation instance with the paper's
//!   three output modes: *no output* (compute only), *classical* (write a
//!   field file per timestep — the baseline Melissa beats), and in transit
//!   (the caller forwards each timestep's field to Melissa);
//! * [`decomposed`] — the MPI-like rank decomposition of one simulation
//!   with halo exchange, bit-identical to the monolithic solver.

pub mod bundle;
pub mod decomposed;
pub mod flow;
pub mod injection;
pub mod simulation;
pub mod transport;
pub mod usecase;

pub use bundle::TubeBundle;
pub use flow::FrozenFlow;
pub use injection::{InjectionParams, InletProfile};
pub use simulation::{OutputMode, Simulation};
pub use usecase::UseCaseConfig;
