//! End-to-end daemon service tests: the multi-tenant acceptance
//! criterion (a daemon-submitted study is bit-identical to the same-seed
//! standalone run, even with two tenants' studies interleaved on one
//! shared pool), the typed quota-rejection path, and the cancel path.

use std::sync::Arc;
use std::time::Duration;

use melissa::client::ClientError;
use melissa::{Study, StudyConfig, StudyResults};
use melissa_daemon::{Daemon, DaemonClient, DaemonConfig, StudyState, TenantQuota};
use melissa_telemetry::ScrapeFormat;
use melissa_transport::{make_transport, TransportKind};

fn seeded_config(seed: u64, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = 3;
    config.max_concurrent_groups = 1; // deterministic integration order
    config.seed = seed;
    config.thresholds = vec![0.1, 0.5];
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-daemon-it-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

fn assert_bits_equal(what: &str, ts: usize, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{what} ts {ts}: length");
    for (c, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what} ts {ts} cell {c}: {x} (daemon) vs {y} (standalone)"
        );
    }
}

fn assert_results_bit_identical(daemon: &StudyResults, standalone: &StudyResults) {
    assert_eq!(daemon.dim(), standalone.dim());
    assert_eq!(daemon.n_timesteps(), standalone.n_timesteps());
    assert_eq!(daemon.n_cells(), standalone.n_cells());
    let n_ts = standalone.n_timesteps();
    let n_probs = standalone.quantile_probs().len();
    for ts in [0, n_ts / 2, n_ts - 1] {
        assert_eq!(
            daemon.groups_integrated(ts),
            standalone.groups_integrated(ts)
        );
        for k in 0..standalone.dim() {
            assert_bits_equal(
                &format!("S_{k}"),
                ts,
                &daemon.first_order_field(ts, k),
                &standalone.first_order_field(ts, k),
            );
            assert_bits_equal(
                &format!("ST_{k}"),
                ts,
                &daemon.total_order_field(ts, k),
                &standalone.total_order_field(ts, k),
            );
        }
        assert_bits_equal(
            "mean",
            ts,
            &daemon.mean_field(ts),
            &standalone.mean_field(ts),
        );
        assert_bits_equal(
            "variance",
            ts,
            &daemon.variance_field(ts),
            &standalone.variance_field(ts),
        );
        assert_bits_equal("min", ts, &daemon.min_field(ts), &standalone.min_field(ts));
        assert_bits_equal("max", ts, &daemon.max_field(ts), &standalone.max_field(ts));
        for q in 0..n_probs {
            assert_bits_equal(
                &format!("quantile[{q}]"),
                ts,
                &daemon.quantile_field(ts, q),
                &standalone.quantile_field(ts, q),
            );
        }
    }
}

/// The tentpole acceptance test: two tenants, two concurrent studies on
/// one shared pool, each bit-identical to its same-seed standalone run.
#[test]
fn interleaved_tenant_studies_match_standalone_bit_for_bit() {
    let transport = make_transport(TransportKind::InProcess);
    let daemon = Daemon::start(
        Arc::clone(&transport),
        DaemonConfig {
            pool_units: 4,
            max_active_studies: 4,
            ..DaemonConfig::default()
        },
    );
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let acme_cfg = seeded_config(2017, "acme");
    let globex_cfg = seeded_config(4242, "globex");

    let acme = client
        .submit("acme", 0, acme_cfg.clone())
        .expect("acme admitted");
    let globex = client
        .submit("globex", 0, globex_cfg.clone())
        .expect("globex admitted");
    assert_ne!(acme, globex);

    let acme_status = client.wait(acme, Duration::from_secs(240)).expect("acme");
    let globex_status = client
        .wait(globex, Duration::from_secs(240))
        .expect("globex");
    assert_eq!(acme_status.state, StudyState::Done);
    assert_eq!(globex_status.state, StudyState::Done);
    assert_eq!(acme_status.groups_finished, 3);
    assert_eq!(globex_status.tenant, "globex");

    let acme_results = client.results(acme).expect("acme results");
    let globex_results = client.results(globex).expect("globex results");

    let mut acme_ref_cfg = acme_cfg;
    acme_ref_cfg.checkpoint_dir = acme_ref_cfg.checkpoint_dir.join("standalone");
    let acme_ref = Study::new(acme_ref_cfg).run().expect("standalone acme");
    let mut globex_ref_cfg = globex_cfg;
    globex_ref_cfg.checkpoint_dir = globex_ref_cfg.checkpoint_dir.join("standalone");
    let globex_ref = Study::new(globex_ref_cfg).run().expect("standalone globex");

    assert_results_bit_identical(&acme_results, &acme_ref.results);
    assert_results_bit_identical(&globex_results, &globex_ref.results);

    daemon.stop();
}

/// A daemon on real TCP loopback sockets serves the same bits as the
/// standalone in-process run.
#[test]
fn daemon_study_over_tcp_matches_standalone() {
    let transport = make_transport(TransportKind::Tcp);
    let daemon = Daemon::start(Arc::clone(&transport), DaemonConfig::default());
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let mut config = seeded_config(99, "tcp");
    config.n_groups = 2;
    let id = client.submit("acme", 0, config.clone()).expect("admitted");
    let status = client.wait(id, Duration::from_secs(240)).expect("finish");
    assert_eq!(status.state, StudyState::Done);
    let results = client.results(id).expect("results");

    config.checkpoint_dir = config.checkpoint_dir.join("standalone");
    let reference = Study::new(config).run().expect("standalone");
    assert_results_bit_identical(&results, &reference.results);

    daemon.stop();
}

/// Admission rejections surface as typed `ClientError::QuotaExceeded`
/// end to end, and releasing the quota readmits the tenant.
#[test]
fn quota_rejections_are_typed_and_released_on_completion() {
    let transport = make_transport(TransportKind::InProcess);
    let daemon = Daemon::start(
        Arc::clone(&transport),
        DaemonConfig {
            default_quota: TenantQuota {
                max_studies: 1,
                max_groups: 16,
                max_units: 4,
            },
            ..DaemonConfig::default()
        },
    );
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    // A study that can never run: its design alone exceeds the quota.
    let mut oversized = seeded_config(7, "oversized");
    oversized.n_groups = 17;
    match client.submit("acme", 0, oversized) {
        Err(ClientError::QuotaExceeded { tenant, resource }) => {
            assert_eq!(tenant, "acme");
            assert_eq!(resource, "groups");
        }
        other => panic!("expected a groups quota rejection, got {other:?}"),
    }

    // Concurrency quota: a second in-flight study is rejected while the
    // first is live, and another tenant is unaffected.
    let first = client
        .submit("acme", 0, seeded_config(8, "first"))
        .expect("first study admitted");
    match client.submit("acme", 0, seeded_config(9, "second")) {
        Err(ClientError::QuotaExceeded { tenant, resource }) => {
            assert_eq!(tenant, "acme");
            assert_eq!(resource, "studies");
        }
        other => panic!("expected a studies quota rejection, got {other:?}"),
    }
    client
        .submit("globex", 0, seeded_config(10, "other-tenant"))
        .expect("other tenants keep their own quota");

    // Once the first study finishes its reservation is returned.
    let status = client.wait(first, Duration::from_secs(240)).expect("first");
    assert_eq!(status.state, StudyState::Done);
    let mut readmitted = Err(ClientError::ServerUnavailable);
    for _ in 0..100 {
        readmitted = client.submit("acme", 0, seeded_config(11, "readmitted"));
        if readmitted.is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    readmitted.expect("quota released after completion");

    daemon.stop();
}

/// Cancelling a running study stops it, reports `Cancelled`, and makes
/// `results` fail loud.
#[test]
fn cancel_stops_a_running_study() {
    let transport = make_transport(TransportKind::InProcess);
    let daemon = Daemon::start(Arc::clone(&transport), DaemonConfig::default());
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let mut config = seeded_config(13, "cancel");
    config.n_groups = 64; // long enough to still be running when cancelled
    let id = client.submit("acme", 0, config).expect("admitted");

    // Wait until the study is actually running, then cancel it.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status(id).expect("status");
        if status.state == StudyState::Running {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "study never started running (state {})",
            status.state
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    client.cancel(id).expect("cancel acknowledged");

    let status = client.wait(id, Duration::from_secs(60)).expect("terminal");
    assert_eq!(status.state, StudyState::Cancelled);
    match client.results(id) {
        Err(ClientError::BadHandshake { detail }) => {
            assert!(detail.contains("cancelled"), "detail: {detail}")
        }
        Err(other) => panic!("expected a cancelled-results error, got {other:?}"),
        Ok(_) => panic!("cancelled study must not return results"),
    }

    // Cancel is idempotent; unknown studies fail loud.
    client.cancel(id).expect("idempotent cancel");
    assert!(client.status(9999).is_err());

    daemon.stop();
}

/// The daemon-level telemetry endpoint aggregates queue depths,
/// per-tenant usage and admission decisions over the scrape protocol.
#[test]
fn daemon_telemetry_snapshot_aggregates_tenants_and_admissions() {
    let transport = make_transport(TransportKind::InProcess);
    let daemon = Daemon::start(
        Arc::clone(&transport),
        DaemonConfig {
            default_quota: TenantQuota {
                max_studies: 1,
                max_groups: 16,
                max_units: 4,
            },
            ..DaemonConfig::default()
        },
    );
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let id = client
        .submit("acme", 0, seeded_config(21, "tele"))
        .expect("admitted");
    // Force one typed rejection so the counters move.
    assert!(client
        .submit("acme", 0, seeded_config(22, "tele2"))
        .is_err());

    let json = client.scrape_daemon(ScrapeFormat::Json).expect("json");
    assert!(json.contains("\"tenant\":\"acme\""), "json: {json}");
    assert!(json.contains("\"admitted\":1"), "json: {json}");
    assert!(json.contains("\"rejected_studies\":1"), "json: {json}");

    let prom = client
        .scrape_daemon(ScrapeFormat::Prometheus)
        .expect("prometheus");
    assert!(prom.contains("melissad_pool_units"), "prom: {prom}");
    assert!(
        prom.contains("melissad_admissions_total{decision=\"rejected\",resource=\"studies\"} 1"),
        "prom: {prom}"
    );

    let status = client.wait(id, Duration::from_secs(240)).expect("finish");
    assert_eq!(status.state, StudyState::Done);
    daemon.stop();
}
