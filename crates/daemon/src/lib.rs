//! # melissa-daemon — Melissa as a multi-tenant service
//!
//! The standalone launcher runs one study per process.  This crate runs
//! Melissa as a *persistent daemon* hosting many concurrent studies from
//! many tenants over one shared node pool:
//!
//! * [`protocol`] — the control-plane wire protocol: serialized
//!   [`StudyConfig`](melissa::StudyConfig) submissions with tenant id
//!   and priority, plus the `status`/`cancel`/`results` lifecycle RPCs,
//!   all over the study transport's length-prefixed frames;
//! * [`admission`] — per-tenant quotas (concurrent studies, groups,
//!   node units) and a bounded submission queue with explicit
//!   reject-over-block semantics;
//! * [`daemon`] — the service itself: each admitted study runs the
//!   unchanged launcher supervision inside its own `study<id>/…`
//!   endpoint scope and dispatches groups through a per-study stream
//!   into the shared deficit-round-robin
//!   [`FairRunner`](melissa_scheduler::FairRunner) pool;
//! * [`snapshot`] — the daemon-level telemetry aggregate (queue depths,
//!   per-tenant usage, admission decisions), scrapeable like any shard;
//! * [`client`] — the tenant-side [`DaemonClient`], with admission
//!   rejections typed end to end as
//!   [`ClientError::QuotaExceeded`](melissa::client::ClientError).
//!
//! The load-bearing invariant: because each study's stream caps its
//! concurrency at the study's own `max_concurrent_groups` and the fair
//! scheduler dispatches a stream's jobs in submission order, a
//! daemon-hosted study is **bit-identical** to the same-seed standalone
//! run — even with other tenants' studies interleaved on the pool.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use melissa::StudyConfig;
//! use melissa_daemon::{Daemon, DaemonClient, DaemonConfig};
//! use melissa_transport::{make_transport, TransportKind};
//!
//! let transport = make_transport(TransportKind::InProcess);
//! let daemon = Daemon::start(Arc::clone(&transport), DaemonConfig::default());
//! let client = DaemonClient::new(transport, Duration::from_secs(5));
//! let id = client.submit("acme", 0, StudyConfig::tiny()).expect("admitted");
//! client.wait(id, Duration::from_secs(120)).expect("finished");
//! let results = client.results(id).expect("results");
//! println!("S_1 map has {} cells", results.n_cells());
//! daemon.stop();
//! ```

pub mod admission;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod snapshot;

pub use admission::{AdmissionController, AdmissionStats, TenantLoad, TenantQuota};
pub use client::{DaemonClient, StudyStatus};
pub use daemon::{Daemon, DaemonConfig};
pub use protocol::{DaemonOp, DaemonReply, DaemonRequest, StudyState};
pub use snapshot::{DaemonSnapshot, StudySnapshot, TenantSnapshot};
