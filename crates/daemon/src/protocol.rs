//! The daemon control-plane wire protocol.
//!
//! Submissions, lifecycle RPCs and their replies travel over the study
//! transport's length-prefixed frames as hand-rolled little-endian
//! messages (same codec discipline as the data plane — no serde in this
//! reproduction).  A client binds a throwaway reply endpoint, sends a
//! [`DaemonRequest`] naming it to [`names::daemon_ctl`], and waits for
//! one [`DaemonReply`] frame — the same request/reply shape as the
//! telemetry scrape protocol, so the control plane works unchanged over
//! every backend (in-process, TCP, multi-node TCP).
//!
//! [`names::daemon_ctl`]: melissa_transport::directory::names::daemon_ctl

use std::path::PathBuf;
use std::time::Duration;

use bytes::{BufMut, BytesMut};
use melissa::StudyConfig;
use melissa_solver::UseCaseConfig;
use melissa_transport::codec::{
    get_f64, get_f64_vec, get_str, get_u16, get_u32, get_u64, get_u8, put_f64_slice, put_str,
    WireError, WireResult,
};
use melissa_transport::{FaultPolicy, TransportKind};

fn put_duration(buf: &mut BytesMut, d: Duration) {
    buf.put_u64_le(d.as_nanos() as u64);
}

fn get_duration(buf: &mut &[u8], what: &'static str) -> WireResult<Duration> {
    Ok(Duration::from_nanos(get_u64(buf, what)?))
}

fn put_opt_f64(buf: &mut BytesMut, v: Option<f64>) {
    match v {
        Some(v) => {
            buf.put_u8(1);
            buf.put_f64_le(v);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_f64(buf: &mut &[u8], what: &'static str) -> WireResult<Option<f64>> {
    match get_u8(buf, what)? {
        0 => Ok(None),
        _ => Ok(Some(get_f64(buf, what)?)),
    }
}

fn put_opt_str(buf: &mut BytesMut, v: &Option<String>) {
    match v {
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        None => buf.put_u8(0),
    }
}

fn get_opt_str(buf: &mut &[u8], what: &'static str) -> WireResult<Option<String>> {
    match get_u8(buf, what)? {
        0 => Ok(None),
        _ => Ok(Some(get_str(buf, what)?)),
    }
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u64_le(b.len() as u64);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut &[u8], what: &'static str) -> WireResult<Vec<u8>> {
    let len = get_u64(buf, what)? as usize;
    if buf.len() < len {
        return Err(WireError::Truncated { what });
    }
    let (head, rest) = buf.split_at(len);
    let out = head.to_vec();
    *buf = rest;
    Ok(out)
}

fn encode_transport_kind(buf: &mut BytesMut, kind: &TransportKind) {
    match kind {
        TransportKind::InProcess => buf.put_u8(0),
        TransportKind::Tcp => buf.put_u8(1),
        TransportKind::TcpNode {
            host,
            port,
            advertise,
            directory,
        } => {
            buf.put_u8(2);
            put_str(buf, host);
            buf.put_u16_le(*port);
            put_opt_str(buf, advertise);
            put_opt_str(buf, directory);
        }
    }
}

fn decode_transport_kind(buf: &mut &[u8]) -> WireResult<TransportKind> {
    match get_u8(buf, "transport kind")? {
        0 => Ok(TransportKind::InProcess),
        1 => Ok(TransportKind::Tcp),
        2 => Ok(TransportKind::TcpNode {
            host: get_str(buf, "transport host")?,
            port: get_u16(buf, "transport port")?,
            advertise: get_opt_str(buf, "transport advertise host")?,
            directory: get_opt_str(buf, "transport directory")?,
        }),
        _ => Err(WireError::Invalid {
            what: "unknown transport kind",
        }),
    }
}

/// Serialises a full [`StudyConfig`] (every deployment and statistics
/// knob, so a daemon-run study is the byte-for-byte configuration the
/// tenant submitted).
pub fn encode_study_config(buf: &mut BytesMut, c: &StudyConfig) {
    buf.put_u64_le(c.n_groups as u64);
    encode_transport_kind(buf, &c.transport);
    buf.put_u64_le(c.n_shards as u64);
    buf.put_u64_le(c.shard_seed);
    buf.put_u64_le(c.solver.nx as u64);
    buf.put_u64_le(c.solver.ny as u64);
    buf.put_u64_le(c.solver.nz as u64);
    buf.put_f64_le(c.solver.lx);
    buf.put_f64_le(c.solver.ly);
    buf.put_f64_le(c.solver.lz);
    buf.put_f64_le(c.solver.u_inlet);
    buf.put_f64_le(c.solver.diffusivity);
    buf.put_u64_le(c.solver.n_timesteps as u64);
    buf.put_f64_le(c.solver.total_time);
    buf.put_f64_le(c.solver.prerun_tol);
    buf.put_u64_le(c.ranks_per_simulation as u64);
    buf.put_u64_le(c.server_workers as u64);
    buf.put_u64_le(c.hwm as u64);
    buf.put_u64_le(c.max_concurrent_groups as u64);
    buf.put_u64_le(c.seed);
    put_duration(buf, c.group_timeout);
    put_duration(buf, c.server_timeout);
    put_duration(buf, c.checkpoint_interval);
    put_str(buf, &c.checkpoint_dir.to_string_lossy());
    buf.put_u32_le(c.max_group_retries);
    put_opt_f64(buf, c.target_ci_width);
    buf.put_f64_le(c.ci_variance_floor);
    put_opt_f64(buf, c.target_quantile_step);
    put_duration(buf, c.wall_limit);
    put_duration(buf, c.migration_timeout);
    let (wire_mode, wire_bits) = c.wire_compression.to_wire();
    buf.put_u8(wire_mode);
    buf.put_u8(wire_bits);
    buf.put_f64_le(c.link_fault.drop_probability);
    put_duration(buf, c.link_fault.delay);
    put_f64_slice(buf, &c.thresholds);
    put_f64_slice(buf, &c.quantile_probs);
    buf.put_u8(c.telemetry as u8);
}

/// Decodes a configuration produced by [`encode_study_config`].
pub fn decode_study_config(buf: &mut &[u8]) -> WireResult<StudyConfig> {
    Ok(StudyConfig {
        n_groups: get_u64(buf, "n_groups")? as usize,
        transport: decode_transport_kind(buf)?,
        n_shards: get_u64(buf, "n_shards")? as usize,
        shard_seed: get_u64(buf, "shard_seed")?,
        solver: UseCaseConfig {
            nx: get_u64(buf, "solver nx")? as usize,
            ny: get_u64(buf, "solver ny")? as usize,
            nz: get_u64(buf, "solver nz")? as usize,
            lx: get_f64(buf, "solver lx")?,
            ly: get_f64(buf, "solver ly")?,
            lz: get_f64(buf, "solver lz")?,
            u_inlet: get_f64(buf, "solver u_inlet")?,
            diffusivity: get_f64(buf, "solver diffusivity")?,
            n_timesteps: get_u64(buf, "solver n_timesteps")? as usize,
            total_time: get_f64(buf, "solver total_time")?,
            prerun_tol: get_f64(buf, "solver prerun_tol")?,
        },
        ranks_per_simulation: get_u64(buf, "ranks_per_simulation")? as usize,
        server_workers: get_u64(buf, "server_workers")? as usize,
        hwm: get_u64(buf, "hwm")? as usize,
        max_concurrent_groups: get_u64(buf, "max_concurrent_groups")? as usize,
        seed: get_u64(buf, "seed")?,
        group_timeout: get_duration(buf, "group_timeout")?,
        server_timeout: get_duration(buf, "server_timeout")?,
        checkpoint_interval: get_duration(buf, "checkpoint_interval")?,
        checkpoint_dir: PathBuf::from(get_str(buf, "checkpoint_dir")?),
        max_group_retries: get_u32(buf, "max_group_retries")?,
        target_ci_width: get_opt_f64(buf, "target_ci_width")?,
        ci_variance_floor: get_f64(buf, "ci_variance_floor")?,
        target_quantile_step: get_opt_f64(buf, "target_quantile_step")?,
        wall_limit: get_duration(buf, "wall_limit")?,
        migration_timeout: get_duration(buf, "migration_timeout")?,
        wire_compression: melissa_transport::WireCompression::from_wire(
            get_u8(buf, "wire compression mode")?,
            get_u8(buf, "wire compression bits")?,
        ),
        link_fault: FaultPolicy {
            drop_probability: get_f64(buf, "link fault drop probability")?,
            delay: get_duration(buf, "link fault delay")?,
        },
        thresholds: get_f64_vec(buf, "thresholds")?,
        quantile_probs: get_f64_vec(buf, "quantile_probs")?,
        telemetry: get_u8(buf, "telemetry flag")? != 0,
    })
}

/// Lifecycle state of a submitted study, as reported by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyState {
    /// Admitted, waiting for an active-study slot.
    Queued,
    /// Supervisor thread live, groups dispatching on the shared pool.
    Running,
    /// Finished successfully; results are available.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled by the tenant (from the queue or mid-run).
    Cancelled,
}

impl StudyState {
    /// No further transitions happen from this state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            StudyState::Done | StudyState::Failed | StudyState::Cancelled
        )
    }

    fn as_byte(self) -> u8 {
        match self {
            StudyState::Queued => 0,
            StudyState::Running => 1,
            StudyState::Done => 2,
            StudyState::Failed => 3,
            StudyState::Cancelled => 4,
        }
    }

    fn from_byte(b: u8) -> WireResult<Self> {
        match b {
            0 => Ok(StudyState::Queued),
            1 => Ok(StudyState::Running),
            2 => Ok(StudyState::Done),
            3 => Ok(StudyState::Failed),
            4 => Ok(StudyState::Cancelled),
            _ => Err(WireError::Invalid {
                what: "unknown study state",
            }),
        }
    }
}

impl std::fmt::Display for StudyState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StudyState::Queued => "queued",
            StudyState::Running => "running",
            StudyState::Done => "done",
            StudyState::Failed => "failed",
            StudyState::Cancelled => "cancelled",
        };
        write!(f, "{s}")
    }
}

/// The operation a control-plane request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonOp {
    /// Submit a study for admission under a tenant id and an
    /// intra-tenant priority (0 = highest).
    Submit {
        /// Tenant the study is accounted to.
        tenant: String,
        /// Priority within the tenant's fair-share (0 = highest).
        priority: u8,
        /// The full study configuration.
        config: Box<StudyConfig>,
    },
    /// Ask for a study's lifecycle state.
    Status {
        /// The study id returned at submission.
        study: u64,
    },
    /// Cancel a queued or running study.
    Cancel {
        /// The study id returned at submission.
        study: u64,
    },
    /// Fetch a finished study's statistics.
    Results {
        /// The study id returned at submission.
        study: u64,
    },
    /// Ask the daemon to cancel everything and exit its control loop.
    Shutdown,
}

/// One control-plane request frame: where to reply, and what to do.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonRequest {
    /// Endpoint the client bound for the reply.
    pub reply_to: String,
    /// The requested operation.
    pub op: DaemonOp,
}

impl DaemonRequest {
    /// Serialises the request.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        put_str(buf, &self.reply_to);
        match &self.op {
            DaemonOp::Submit {
                tenant,
                priority,
                config,
            } => {
                buf.put_u8(1);
                put_str(buf, tenant);
                buf.put_u8(*priority);
                encode_study_config(buf, config);
            }
            DaemonOp::Status { study } => {
                buf.put_u8(2);
                buf.put_u64_le(*study);
            }
            DaemonOp::Cancel { study } => {
                buf.put_u8(3);
                buf.put_u64_le(*study);
            }
            DaemonOp::Results { study } => {
                buf.put_u8(4);
                buf.put_u64_le(*study);
            }
            DaemonOp::Shutdown => buf.put_u8(5),
        }
    }

    /// Decodes a request frame.
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        let reply_to = get_str(buf, "request reply endpoint")?;
        let op = match get_u8(buf, "request op tag")? {
            1 => DaemonOp::Submit {
                tenant: get_str(buf, "submit tenant")?,
                priority: get_u8(buf, "submit priority")?,
                config: Box::new(decode_study_config(buf)?),
            },
            2 => DaemonOp::Status {
                study: get_u64(buf, "status study id")?,
            },
            3 => DaemonOp::Cancel {
                study: get_u64(buf, "cancel study id")?,
            },
            4 => DaemonOp::Results {
                study: get_u64(buf, "results study id")?,
            },
            5 => DaemonOp::Shutdown,
            _ => {
                return Err(WireError::Invalid {
                    what: "unknown request op",
                })
            }
        };
        Ok(Self { reply_to, op })
    }
}

/// One control-plane reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonReply {
    /// The study was admitted under this id.
    Submitted {
        /// Daemon-assigned study id.
        study: u64,
    },
    /// Admission refused the submission — the typed rejection the client
    /// surfaces as `ClientError::QuotaExceeded`.
    Rejected {
        /// The tenant whose quota was hit.
        tenant: String,
        /// Which quota: `"queue"`, `"studies"`, `"groups"` or `"units"`.
        resource: String,
    },
    /// Lifecycle state of a study.
    Status {
        /// The study id.
        study: u64,
        /// Current lifecycle state.
        state: StudyState,
        /// Owning tenant.
        tenant: String,
        /// Groups fully integrated (0 until the study finishes; live
        /// progress comes from the per-study scrape endpoints).
        groups_finished: u64,
        /// Groups in the study's design.
        n_groups: u64,
    },
    /// Cancellation acknowledged (the state flips asynchronously for a
    /// running study).
    Cancelled {
        /// The study id.
        study: u64,
    },
    /// A finished study's statistics: the final per-worker states in the
    /// checkpoint codec, plus the shape needed to reassemble
    /// `StudyResults` bit-identically on the client.
    Results {
        /// Number of varied parameters.
        p: u64,
        /// Timesteps per simulation.
        n_timesteps: u64,
        /// Mesh cells.
        n_cells: u64,
        /// Groups fully integrated.
        groups_finished: u64,
        /// One packed `WorkerState` per server worker, slab order.
        workers: Vec<Vec<u8>>,
    },
    /// The request could not be served (unknown study, results not
    /// ready, study failed).
    Error {
        /// Human-readable reason.
        detail: String,
    },
    /// Shutdown acknowledged.
    ShuttingDown,
}

impl DaemonReply {
    /// Serialises the reply.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            DaemonReply::Submitted { study } => {
                buf.put_u8(1);
                buf.put_u64_le(*study);
            }
            DaemonReply::Rejected { tenant, resource } => {
                buf.put_u8(2);
                put_str(buf, tenant);
                put_str(buf, resource);
            }
            DaemonReply::Status {
                study,
                state,
                tenant,
                groups_finished,
                n_groups,
            } => {
                buf.put_u8(3);
                buf.put_u64_le(*study);
                buf.put_u8(state.as_byte());
                put_str(buf, tenant);
                buf.put_u64_le(*groups_finished);
                buf.put_u64_le(*n_groups);
            }
            DaemonReply::Cancelled { study } => {
                buf.put_u8(4);
                buf.put_u64_le(*study);
            }
            DaemonReply::Results {
                p,
                n_timesteps,
                n_cells,
                groups_finished,
                workers,
            } => {
                buf.put_u8(5);
                buf.put_u64_le(*p);
                buf.put_u64_le(*n_timesteps);
                buf.put_u64_le(*n_cells);
                buf.put_u64_le(*groups_finished);
                buf.put_u32_le(workers.len() as u32);
                for w in workers {
                    put_bytes(buf, w);
                }
            }
            DaemonReply::Error { detail } => {
                buf.put_u8(6);
                put_str(buf, detail);
            }
            DaemonReply::ShuttingDown => buf.put_u8(7),
        }
    }

    /// Decodes a reply frame.
    pub fn decode_from(buf: &mut &[u8]) -> WireResult<Self> {
        Ok(match get_u8(buf, "reply tag")? {
            1 => DaemonReply::Submitted {
                study: get_u64(buf, "submitted study id")?,
            },
            2 => DaemonReply::Rejected {
                tenant: get_str(buf, "rejected tenant")?,
                resource: get_str(buf, "rejected resource")?,
            },
            3 => DaemonReply::Status {
                study: get_u64(buf, "status study id")?,
                state: StudyState::from_byte(get_u8(buf, "status state")?)?,
                tenant: get_str(buf, "status tenant")?,
                groups_finished: get_u64(buf, "status groups finished")?,
                n_groups: get_u64(buf, "status n_groups")?,
            },
            4 => DaemonReply::Cancelled {
                study: get_u64(buf, "cancelled study id")?,
            },
            5 => {
                let p = get_u64(buf, "results p")?;
                let n_timesteps = get_u64(buf, "results n_timesteps")?;
                let n_cells = get_u64(buf, "results n_cells")?;
                let groups_finished = get_u64(buf, "results groups finished")?;
                let n_workers = get_u32(buf, "results worker count")?;
                let mut workers = Vec::with_capacity(n_workers as usize);
                for _ in 0..n_workers {
                    workers.push(get_bytes(buf, "results worker state")?);
                }
                DaemonReply::Results {
                    p,
                    n_timesteps,
                    n_cells,
                    groups_finished,
                    workers,
                }
            }
            6 => DaemonReply::Error {
                detail: get_str(buf, "error detail")?,
            },
            7 => DaemonReply::ShuttingDown,
            _ => {
                return Err(WireError::Invalid {
                    what: "unknown reply tag",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exotic_config() -> StudyConfig {
        let mut c = StudyConfig::tiny();
        c.n_groups = 37;
        c.transport = TransportKind::TcpNode {
            host: "0.0.0.0".into(),
            port: 7171,
            advertise: Some("10.0.0.3".into()),
            directory: None,
        };
        c.n_shards = 3;
        c.seed = 0xdead_beef;
        c.target_ci_width = Some(0.05);
        c.target_quantile_step = None;
        c.link_fault.drop_probability = 0.125;
        c.link_fault.delay = Duration::from_micros(250);
        c.thresholds = vec![0.25, 0.75];
        c.checkpoint_dir = PathBuf::from("/tmp/melissa-daemon-test");
        c.telemetry = false;
        c.wire_compression = melissa_transport::WireCompression::Truncate { mantissa_bits: 24 };
        c
    }

    fn round_trip_config(c: &StudyConfig) -> StudyConfig {
        let mut buf = BytesMut::new();
        encode_study_config(&mut buf, c);
        let mut slice: &[u8] = &buf;
        let back = decode_study_config(&mut slice).expect("decode");
        assert!(slice.is_empty(), "trailing bytes after config");
        back
    }

    #[test]
    fn study_config_round_trips_every_field() {
        let c = exotic_config();
        let back = round_trip_config(&c);
        assert_eq!(back.n_groups, c.n_groups);
        assert_eq!(back.transport, c.transport);
        assert_eq!(back.n_shards, c.n_shards);
        assert_eq!(back.shard_seed, c.shard_seed);
        assert_eq!(back.solver, c.solver);
        assert_eq!(back.ranks_per_simulation, c.ranks_per_simulation);
        assert_eq!(back.server_workers, c.server_workers);
        assert_eq!(back.hwm, c.hwm);
        assert_eq!(back.max_concurrent_groups, c.max_concurrent_groups);
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.group_timeout, c.group_timeout);
        assert_eq!(back.server_timeout, c.server_timeout);
        assert_eq!(back.checkpoint_interval, c.checkpoint_interval);
        assert_eq!(back.checkpoint_dir, c.checkpoint_dir);
        assert_eq!(back.max_group_retries, c.max_group_retries);
        assert_eq!(back.target_ci_width, c.target_ci_width);
        assert_eq!(back.ci_variance_floor, c.ci_variance_floor);
        assert_eq!(back.target_quantile_step, c.target_quantile_step);
        assert_eq!(back.wall_limit, c.wall_limit);
        assert_eq!(back.migration_timeout, c.migration_timeout);
        assert_eq!(
            back.link_fault.drop_probability,
            c.link_fault.drop_probability
        );
        assert_eq!(back.link_fault.delay, c.link_fault.delay);
        assert_eq!(back.thresholds, c.thresholds);
        assert_eq!(back.quantile_probs, c.quantile_probs);
        assert_eq!(back.telemetry, c.telemetry);
        assert_eq!(back.wire_compression, c.wire_compression);
    }

    #[test]
    fn default_config_round_trips() {
        let c = StudyConfig::default();
        let back = round_trip_config(&c);
        assert_eq!(back.n_groups, c.n_groups);
        assert_eq!(back.transport, c.transport);
        assert_eq!(back.quantile_probs, c.quantile_probs);
    }

    #[test]
    fn requests_round_trip() {
        let ops = vec![
            DaemonOp::Submit {
                tenant: "acme".into(),
                priority: 2,
                config: Box::new(exotic_config()),
            },
            DaemonOp::Status { study: 7 },
            DaemonOp::Cancel { study: 9 },
            DaemonOp::Results { study: 11 },
            DaemonOp::Shutdown,
        ];
        for op in ops {
            let req = DaemonRequest {
                reply_to: "ctl/reply/1/2".into(),
                op,
            };
            let mut buf = BytesMut::new();
            req.encode_into(&mut buf);
            let mut slice: &[u8] = &buf;
            let back = DaemonRequest::decode_from(&mut slice).expect("decode");
            assert!(slice.is_empty());
            assert_eq!(req, back);
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = vec![
            DaemonReply::Submitted { study: 1 },
            DaemonReply::Rejected {
                tenant: "acme".into(),
                resource: "studies".into(),
            },
            DaemonReply::Status {
                study: 3,
                state: StudyState::Running,
                tenant: "acme".into(),
                groups_finished: 4,
                n_groups: 8,
            },
            DaemonReply::Cancelled { study: 5 },
            DaemonReply::Results {
                p: 2,
                n_timesteps: 4,
                n_cells: 64,
                groups_finished: 8,
                workers: vec![vec![1, 2, 3], vec![], vec![0xff; 17]],
            },
            DaemonReply::Error {
                detail: "study 42 not found".into(),
            },
            DaemonReply::ShuttingDown,
        ];
        for reply in replies {
            let mut buf = BytesMut::new();
            reply.encode_into(&mut buf);
            let mut slice: &[u8] = &buf;
            let back = DaemonReply::decode_from(&mut slice).expect("decode");
            assert!(slice.is_empty());
            assert_eq!(reply, back);
        }
    }

    #[test]
    fn truncated_frames_fail_loud() {
        let mut buf = BytesMut::new();
        DaemonRequest {
            reply_to: "r".into(),
            op: DaemonOp::Status { study: 1 },
        }
        .encode_into(&mut buf);
        let mut slice: &[u8] = &buf[..buf.len() - 1];
        assert!(DaemonRequest::decode_from(&mut slice).is_err());
    }

    #[test]
    fn study_states_expose_terminality() {
        assert!(!StudyState::Queued.is_terminal());
        assert!(!StudyState::Running.is_terminal());
        assert!(StudyState::Done.is_terminal());
        assert!(StudyState::Failed.is_terminal());
        assert!(StudyState::Cancelled.is_terminal());
        assert_eq!(StudyState::Running.to_string(), "running");
    }
}
