//! The daemon-level observability snapshot served on
//! [`names::daemon_telemetry`]: queue depths, per-tenant usage and
//! admission decisions aggregated across every hosted study.
//!
//! The endpoint speaks the ordinary telemetry scrape protocol
//! ([`melissa_telemetry::ScrapeRequest`] in, one reply frame out), so
//! any scraper that can read a shard endpoint can read the daemon
//! aggregate.  The snapshot is a daemon-shaped document rather than a
//! shard [`ScrapeSnapshot`], so it is always served as rendered text:
//! JSON for [`ScrapeFormat::Binary`]/[`ScrapeFormat::Json`] requests, a
//! Prometheus exposition for [`ScrapeFormat::Prometheus`] — both decode
//! on the client as [`melissa_telemetry::ScrapeReply::Text`].
//!
//! [`names::daemon_telemetry`]: melissa_transport::directory::names::daemon_telemetry
//! [`ScrapeSnapshot`]: melissa_telemetry::ScrapeSnapshot

use bytes::{BufMut, BytesMut};
use melissa_telemetry::ScrapeFormat;
use melissa_transport::Frame;

use crate::admission::AdmissionStats;
use crate::protocol::StudyState;

/// One tenant's aggregated usage: fair-scheduler counters plus the
/// admission reservation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub tenant: String,
    /// Deficit-round-robin weight.
    pub weight: u64,
    /// Group jobs waiting in the fair scheduler.
    pub queued_jobs: u64,
    /// Group jobs currently running on the pool.
    pub running_jobs: usize,
    /// Node units currently held.
    pub running_units: usize,
    /// Group jobs dispatched over the tenant's lifetime.
    pub dispatched_jobs: u64,
    /// Studies in flight (queued + running).
    pub studies: usize,
    /// Groups reserved by in-flight studies.
    pub groups_reserved: usize,
    /// Node units reserved by in-flight studies.
    pub units_reserved: usize,
}

/// One hosted study's lifecycle row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudySnapshot {
    /// Daemon-assigned study id.
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Intra-tenant priority.
    pub priority: u8,
    /// Current lifecycle state.
    pub state: StudyState,
    /// Groups in the design.
    pub n_groups: u64,
}

/// A point-in-time view of the whole daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonSnapshot {
    /// Nanoseconds since the daemon started.
    pub uptime_nanos: u64,
    /// Node units in the shared pool.
    pub pool_units: usize,
    /// Units currently free.
    pub free_units: usize,
    /// Studies holding an active slot right now.
    pub active_studies: usize,
    /// Active-study slots.
    pub max_active_studies: usize,
    /// Admitted studies waiting for a slot.
    pub queue_depth: usize,
    /// Wait-queue bound.
    pub queue_cap: usize,
    /// Admission decision counters.
    pub admission: AdmissionStats,
    /// Per-tenant rollups.
    pub tenants: Vec<TenantSnapshot>,
    /// Per-study lifecycle rows.
    pub studies: Vec<StudySnapshot>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl DaemonSnapshot {
    /// Renders the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"uptime_nanos\":{},\"pool_units\":{},\"free_units\":{},\
             \"active_studies\":{},\"max_active_studies\":{},\
             \"queue_depth\":{},\"queue_cap\":{},",
            self.uptime_nanos,
            self.pool_units,
            self.free_units,
            self.active_studies,
            self.max_active_studies,
            self.queue_depth,
            self.queue_cap,
        ));
        out.push_str(&format!(
            "\"admission\":{{\"admitted\":{},\"rejected_queue\":{},\
             \"rejected_studies\":{},\"rejected_groups\":{},\"rejected_units\":{}}},",
            self.admission.admitted,
            self.admission.rejected_queue,
            self.admission.rejected_studies,
            self.admission.rejected_groups,
            self.admission.rejected_units,
        ));
        out.push_str("\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"weight\":{},\"queued_jobs\":{},\
                 \"running_jobs\":{},\"running_units\":{},\"dispatched_jobs\":{},\
                 \"studies\":{},\"groups_reserved\":{},\"units_reserved\":{}}}",
                json_escape(&t.tenant),
                t.weight,
                t.queued_jobs,
                t.running_jobs,
                t.running_units,
                t.dispatched_jobs,
                t.studies,
                t.groups_reserved,
                t.units_reserved,
            ));
        }
        out.push_str("],\"studies\":[");
        for (i, s) in self.studies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"tenant\":\"{}\",\"priority\":{},\
                 \"state\":\"{}\",\"n_groups\":{}}}",
                s.id,
                json_escape(&s.tenant),
                s.priority,
                s.state,
                s.n_groups,
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the snapshot as a Prometheus-style text exposition
    /// (`melissad_`-prefixed families, `tenant` labels).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let gauge = |out: &mut String, name: &str, v: u64| {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        };
        gauge(
            &mut out,
            "melissad_uptime_seconds",
            self.uptime_nanos / 1_000_000_000,
        );
        gauge(&mut out, "melissad_pool_units", self.pool_units as u64);
        gauge(&mut out, "melissad_free_units", self.free_units as u64);
        gauge(
            &mut out,
            "melissad_active_studies",
            self.active_studies as u64,
        );
        gauge(&mut out, "melissad_queue_depth", self.queue_depth as u64);
        out.push_str("# TYPE melissad_admissions_total counter\n");
        out.push_str(&format!(
            "melissad_admissions_total{{decision=\"admitted\"}} {}\n",
            self.admission.admitted
        ));
        for (resource, v) in [
            ("queue", self.admission.rejected_queue),
            ("studies", self.admission.rejected_studies),
            ("groups", self.admission.rejected_groups),
            ("units", self.admission.rejected_units),
        ] {
            out.push_str(&format!(
                "melissad_admissions_total{{decision=\"rejected\",resource=\"{resource}\"}} {v}\n"
            ));
        }
        for (family, pick) in [
            ("melissad_tenant_queued_jobs", 0usize),
            ("melissad_tenant_running_jobs", 1),
            ("melissad_tenant_running_units", 2),
            ("melissad_tenant_studies", 3),
        ] {
            out.push_str(&format!("# TYPE {family} gauge\n"));
            for t in &self.tenants {
                let v = match pick {
                    0 => t.queued_jobs,
                    1 => t.running_jobs as u64,
                    2 => t.running_units as u64,
                    _ => t.studies as u64,
                };
                out.push_str(&format!("{family}{{tenant=\"{}\"}} {v}\n", t.tenant));
            }
        }
        out.push_str("# TYPE melissad_tenant_dispatched_jobs_total counter\n");
        for t in &self.tenants {
            out.push_str(&format!(
                "melissad_tenant_dispatched_jobs_total{{tenant=\"{}\"}} {}\n",
                t.tenant, t.dispatched_jobs
            ));
        }
        out.push_str("# TYPE melissad_study_state gauge\n");
        for s in &self.studies {
            out.push_str(&format!(
                "melissad_study_state{{study=\"{}\",tenant=\"{}\",state=\"{}\"}} 1\n",
                s.id, s.tenant, s.state
            ));
        }
        out
    }

    /// Renders the reply frame for a scrape request: one format byte,
    /// then the text body.  Binary requests are served JSON (the daemon
    /// aggregate has no fixed binary form), so every reply decodes as
    /// [`melissa_telemetry::ScrapeReply::Text`].
    pub fn encode_reply(&self, format: ScrapeFormat) -> Frame {
        let mut buf = BytesMut::new();
        match format {
            ScrapeFormat::Binary | ScrapeFormat::Json => {
                buf.put_u8(1); // ScrapeFormat::Json on the wire
                buf.put_slice(self.to_json().as_bytes());
            }
            ScrapeFormat::Prometheus => {
                buf.put_u8(2);
                buf.put_slice(self.to_prometheus().as_bytes());
            }
        }
        buf.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use melissa_telemetry::ScrapeReply;

    fn sample() -> DaemonSnapshot {
        DaemonSnapshot {
            uptime_nanos: 5_000_000_000,
            pool_units: 8,
            free_units: 3,
            active_studies: 2,
            max_active_studies: 4,
            queue_depth: 1,
            queue_cap: 16,
            admission: AdmissionStats {
                admitted: 3,
                rejected_queue: 0,
                rejected_studies: 2,
                rejected_groups: 0,
                rejected_units: 1,
            },
            tenants: vec![TenantSnapshot {
                tenant: "acme".into(),
                weight: 2,
                queued_jobs: 4,
                running_jobs: 3,
                running_units: 3,
                dispatched_jobs: 17,
                studies: 2,
                groups_reserved: 16,
                units_reserved: 2,
            }],
            studies: vec![StudySnapshot {
                id: 1,
                tenant: "acme".into(),
                priority: 0,
                state: StudyState::Running,
                n_groups: 8,
            }],
        }
    }

    #[test]
    fn json_carries_queues_usage_and_admissions() {
        let json = sample().to_json();
        assert!(json.contains("\"queue_depth\":1"));
        assert!(json.contains("\"rejected_studies\":2"));
        assert!(json.contains("\"tenant\":\"acme\""));
        assert!(json.contains("\"dispatched_jobs\":17"));
        assert!(json.contains("\"state\":\"running\""));
    }

    #[test]
    fn prometheus_labels_tenants_and_decisions() {
        let text = sample().to_prometheus();
        assert!(text.contains("melissad_queue_depth 1"));
        assert!(
            text.contains("melissad_admissions_total{decision=\"rejected\",resource=\"units\"} 1")
        );
        assert!(text.contains("melissad_tenant_running_jobs{tenant=\"acme\"} 3"));
        assert!(
            text.contains("melissad_study_state{study=\"1\",tenant=\"acme\",state=\"running\"} 1")
        );
    }

    #[test]
    fn every_reply_format_decodes_as_scrape_text() {
        let snap = sample();
        for format in [
            ScrapeFormat::Binary,
            ScrapeFormat::Json,
            ScrapeFormat::Prometheus,
        ] {
            let frame = snap.encode_reply(format);
            let mut slice: &[u8] = &frame;
            match ScrapeReply::decode_from(&mut slice).expect("decode") {
                ScrapeReply::Text(t) => assert!(!t.is_empty()),
                ScrapeReply::Snapshot(_) => panic!("daemon snapshot must render as text"),
            }
        }
    }
}
