//! The multi-tenant study daemon: a persistent service hosting many
//! concurrent studies over one shared node pool.
//!
//! [`Daemon::start`] binds two endpoints on the caller's transport:
//!
//! * [`names::daemon_ctl`] — the control plane.  Clients submit
//!   serialized [`StudyConfig`]s with a tenant id and priority and drive
//!   the study lifecycle (`status`, `cancel`, `results`) through
//!   [`crate::protocol`] request/reply frames.
//! * [`names::daemon_telemetry`] — the daemon-level aggregate snapshot
//!   ([`crate::snapshot::DaemonSnapshot`]), served over the standard
//!   scrape protocol.
//!
//! Each admitted study runs under the unchanged launcher supervision
//! machinery inside its own endpoint scope (`study<id>/…`, so routing,
//! checkpoints, telemetry and migration stay isolated per study) and
//! dispatches its groups through a per-study
//! [`StreamHandle`](melissa_scheduler::StreamHandle) into the
//! shared deficit-round-robin [`FairRunner`] pool.  The stream cap
//! equals the study's `max_concurrent_groups`, so a daemon-hosted study
//! starts its groups in exactly the order and with exactly the
//! concurrency the standalone launcher would — which is why a
//! daemon-submitted study is bit-identical to the same-seed standalone
//! run even with other tenants' studies interleaved on the pool.
//!
//! [`names::daemon_ctl`]: melissa_transport::directory::names::daemon_ctl
//! [`names::daemon_telemetry`]: melissa_transport::directory::names::daemon_telemetry

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use melissa::server::checkpoint::pack_state;
use melissa::{Study, StudyConfig, StudyRuntime};
use melissa_scheduler::FairRunner;
use melissa_telemetry::ScrapeRequest;
use melissa_transport::directory::names;
use melissa_transport::{KillSwitch, RecvTimeoutError, Transport};
use parking_lot::Mutex;

use crate::admission::{AdmissionController, TenantQuota};
use crate::protocol::{DaemonOp, DaemonReply, DaemonRequest, StudyState};
use crate::snapshot::{DaemonSnapshot, StudySnapshot, TenantSnapshot};

/// Deployment knobs for a daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Node units in the shared fair-scheduler pool (concurrent group
    /// jobs across every hosted study).
    pub pool_units: usize,
    /// Studies supervised concurrently; admitted studies beyond this
    /// wait in the bounded queue.
    pub max_active_studies: usize,
    /// Wait-queue bound — a submission arriving with no active slot and
    /// a full queue is rejected (`"queue"`), never blocked.
    pub queue_cap: usize,
    /// Quota for tenants without an explicit entry.
    pub default_quota: TenantQuota,
    /// Per-tenant quota overrides.
    pub quotas: Vec<(String, TenantQuota)>,
    /// Per-tenant fair-share weights (default 1).
    pub weights: Vec<(String, u64)>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            pool_units: 8,
            max_active_studies: 4,
            queue_cap: 16,
            default_quota: TenantQuota::default(),
            quotas: Vec::new(),
            weights: Vec::new(),
        }
    }
}

/// A finished study's stored outcome.
struct Finished {
    p: u64,
    n_timesteps: u64,
    n_cells: u64,
    groups_finished: u64,
    workers: Vec<Vec<u8>>,
    error: Option<String>,
}

/// One hosted study's shared record.
struct StudyRecord {
    id: u64,
    tenant: String,
    priority: u8,
    n_groups: usize,
    units: usize,
    state: Mutex<StudyState>,
    cancel: KillSwitch,
    /// Taken by the supervisor thread at promotion.
    config: Mutex<Option<StudyConfig>>,
    finished: Mutex<Option<Finished>>,
}

impl StudyRecord {
    fn state(&self) -> StudyState {
        *self.state.lock()
    }
}

/// A running daemon instance.  Dropping (or [`stop`](Daemon::stop)ping)
/// cancels every hosted study and joins the control loop.
pub struct Daemon {
    kill: KillSwitch,
    transport: Arc<dyn Transport>,
    ctl: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the daemon on `transport`, binding the control and
    /// telemetry endpoints and spawning the control loop.
    pub fn start(transport: Arc<dyn Transport>, config: DaemonConfig) -> Self {
        let kill = KillSwitch::new();
        let loop_kill = kill.clone();
        let loop_transport = Arc::clone(&transport);
        let ctl = std::thread::Builder::new()
            .name("melissad-ctl".into())
            .spawn(move || control_loop(loop_transport, config, loop_kill))
            .expect("spawn daemon control loop");
        Self {
            kill,
            transport,
            ctl: Some(ctl),
        }
    }

    /// The transport the daemon serves on.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Cancels every hosted study and joins the control loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.kill.kill();
        if let Some(h) = self.ctl.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything the control loop owns.
struct DaemonState {
    transport: Arc<dyn Transport>,
    config: DaemonConfig,
    fair: FairRunner,
    admission: AdmissionController,
    registry: HashMap<u64, Arc<StudyRecord>>,
    queue: VecDeque<u64>,
    running: HashMap<u64, JoinHandle<()>>,
    next_id: u64,
    started_at: Instant,
    shutting_down: bool,
}

fn control_loop(transport: Arc<dyn Transport>, config: DaemonConfig, kill: KillSwitch) {
    let ctl_rx = transport.bind(&names::daemon_ctl(), 64);
    let tele_rx = transport.bind(&names::daemon_telemetry(), 64);

    let fair = FairRunner::new(config.pool_units);
    for (tenant, weight) in &config.weights {
        fair.set_weight(tenant, *weight);
    }
    let mut admission = AdmissionController::new(config.queue_cap, config.default_quota);
    for (tenant, quota) in &config.quotas {
        admission.set_quota(tenant, *quota);
    }

    let mut st = DaemonState {
        transport: Arc::clone(&transport),
        config,
        fair,
        admission,
        registry: HashMap::new(),
        queue: VecDeque::new(),
        running: HashMap::new(),
        next_id: 1,
        started_at: Instant::now(),
        shutting_down: false,
    };

    let poll = Duration::from_millis(5);
    loop {
        if kill.is_killed() {
            st.begin_shutdown();
        }
        match ctl_rx.recv_timeout(poll) {
            Ok(frame) => st.handle_ctl_frame(&frame),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        // Drain whatever else queued behind the first frame.
        while let Ok(frame) = ctl_rx.try_recv() {
            st.handle_ctl_frame(&frame);
        }
        while let Ok(frame) = tele_rx.try_recv() {
            st.handle_scrape_frame(&frame);
        }
        st.reap_finished();
        st.promote_queued();
        if st.shutting_down && st.running.is_empty() {
            break;
        }
    }
    transport.unbind(&names::daemon_ctl());
    transport.unbind(&names::daemon_telemetry());
}

impl DaemonState {
    fn handle_ctl_frame(&mut self, frame: &[u8]) {
        let mut slice: &[u8] = frame;
        let req = match DaemonRequest::decode_from(&mut slice) {
            Ok(req) => req,
            Err(_) => return, // not a control frame; drop it
        };
        let reply = self.handle_op(&req.op);
        self.send_reply(&req.reply_to, &reply);
    }

    fn handle_op(&mut self, op: &DaemonOp) -> DaemonReply {
        match op {
            DaemonOp::Submit {
                tenant,
                priority,
                config,
            } => self.handle_submit(tenant, *priority, config),
            DaemonOp::Status { study } => match self.registry.get(study) {
                Some(rec) => {
                    let groups_finished = rec
                        .finished
                        .lock()
                        .as_ref()
                        .map_or(0, |f| f.groups_finished);
                    DaemonReply::Status {
                        study: *study,
                        state: rec.state(),
                        tenant: rec.tenant.clone(),
                        groups_finished,
                        n_groups: rec.n_groups as u64,
                    }
                }
                None => DaemonReply::Error {
                    detail: format!("study {study} not found"),
                },
            },
            DaemonOp::Cancel { study } => self.handle_cancel(*study),
            DaemonOp::Results { study } => self.handle_results(*study),
            DaemonOp::Shutdown => {
                self.begin_shutdown();
                DaemonReply::ShuttingDown
            }
        }
    }

    fn handle_submit(&mut self, tenant: &str, priority: u8, config: &StudyConfig) -> DaemonReply {
        if self.shutting_down {
            return DaemonReply::Error {
                detail: "daemon is shutting down".to_string(),
            };
        }
        let units = config.max_concurrent_groups;
        let would_queue = self.running.len() >= self.config.max_active_studies;
        if let Err(resource) = self
            .admission
            .admit(tenant, config.n_groups, units, would_queue)
        {
            return DaemonReply::Rejected {
                tenant: tenant.to_string(),
                resource: resource.to_string(),
            };
        }
        let id = self.next_id;
        self.next_id += 1;
        let rec = Arc::new(StudyRecord {
            id,
            tenant: tenant.to_string(),
            priority,
            n_groups: config.n_groups,
            units,
            state: Mutex::new(StudyState::Queued),
            cancel: KillSwitch::new(),
            config: Mutex::new(Some(config.clone())),
            finished: Mutex::new(None),
        });
        self.registry.insert(id, rec);
        self.queue.push_back(id);
        // The promotion pass right after frame handling starts it if a
        // slot is free; `would_queue` only reserved the queue slot.
        DaemonReply::Submitted { study: id }
    }

    fn handle_cancel(&mut self, study: u64) -> DaemonReply {
        let Some(rec) = self.registry.get(&study).cloned() else {
            return DaemonReply::Error {
                detail: format!("study {study} not found"),
            };
        };
        match rec.state() {
            StudyState::Queued => {
                self.queue.retain(|&id| id != study);
                *rec.state.lock() = StudyState::Cancelled;
                self.admission
                    .release(&rec.tenant, rec.n_groups, rec.units, true);
            }
            StudyState::Running => rec.cancel.kill(),
            // Terminal states: cancel is an idempotent no-op.
            _ => {}
        }
        DaemonReply::Cancelled { study }
    }

    fn handle_results(&mut self, study: u64) -> DaemonReply {
        let Some(rec) = self.registry.get(&study) else {
            return DaemonReply::Error {
                detail: format!("study {study} not found"),
            };
        };
        let state = rec.state();
        let finished = rec.finished.lock();
        match (state, finished.as_ref()) {
            (StudyState::Done, Some(f)) => DaemonReply::Results {
                p: f.p,
                n_timesteps: f.n_timesteps,
                n_cells: f.n_cells,
                groups_finished: f.groups_finished,
                workers: f.workers.clone(),
            },
            (StudyState::Failed, Some(f)) => DaemonReply::Error {
                detail: format!(
                    "study {study} failed: {}",
                    f.error.as_deref().unwrap_or("unknown error")
                ),
            },
            (StudyState::Cancelled, _) => DaemonReply::Error {
                detail: format!("study {study} was cancelled"),
            },
            _ => DaemonReply::Error {
                detail: format!("study {study} is {state}; results not ready"),
            },
        }
    }

    /// Promotes queued studies into free active slots, FIFO.  Group-level
    /// fairness across tenants is the fair scheduler's job; this is only
    /// the supervisor-thread cap.
    fn promote_queued(&mut self) {
        while !self.shutting_down && self.running.len() < self.config.max_active_studies {
            let Some(id) = self.queue.pop_front() else {
                break;
            };
            let rec = Arc::clone(&self.registry[&id]);
            let config = rec.config.lock().take().expect("queued study has a config");
            self.admission.promoted();
            *rec.state.lock() = StudyState::Running;
            let stream = self
                .fair
                .open_stream(&rec.tenant, rec.priority, rec.units.max(1));
            let fair = self.fair.clone();
            let transport = Arc::clone(&self.transport);
            let handle = std::thread::Builder::new()
                .name(format!("melissad-study{id}"))
                .spawn(move || {
                    let runtime = StudyRuntime {
                        transport: Some(transport),
                        runner: Some(Arc::new(stream.clone())),
                        scope: names::study_scope(rec.id),
                        cancel: rec.cancel.clone(),
                    };
                    let outcome = Study::new(config).run_in(runtime);
                    fair.close_stream(stream.id());
                    match outcome {
                        Ok(out) => {
                            *rec.finished.lock() = Some(Finished {
                                p: out.results.dim() as u64,
                                n_timesteps: out.results.n_timesteps() as u64,
                                n_cells: out.results.n_cells() as u64,
                                groups_finished: out.report.groups_finished as u64,
                                workers: out.results.workers().iter().map(pack_state).collect(),
                                error: None,
                            });
                            *rec.state.lock() = StudyState::Done;
                        }
                        Err(e) => {
                            let state = if rec.cancel.is_killed() {
                                StudyState::Cancelled
                            } else {
                                StudyState::Failed
                            };
                            *rec.finished.lock() = Some(Finished {
                                p: 0,
                                n_timesteps: 0,
                                n_cells: 0,
                                groups_finished: 0,
                                workers: Vec::new(),
                                error: Some(e),
                            });
                            *rec.state.lock() = state;
                        }
                    }
                })
                .expect("spawn study supervisor");
            self.running.insert(id, handle);
        }
    }

    /// Joins supervisor threads that have exited and returns their
    /// admission reservations.
    fn reap_finished(&mut self) {
        let done: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, h)| h.is_finished())
            .map(|(&id, _)| id)
            .collect();
        for id in done {
            if let Some(handle) = self.running.remove(&id) {
                let _ = handle.join();
            }
            let rec = &self.registry[&id];
            self.admission
                .release(&rec.tenant, rec.n_groups, rec.units, false);
        }
    }

    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        // Queued studies are cancelled in place; running ones get their
        // kill switch and are reaped as they exit.
        while let Some(id) = self.queue.pop_front() {
            let rec = &self.registry[&id];
            *rec.state.lock() = StudyState::Cancelled;
            self.admission
                .release(&rec.tenant, rec.n_groups, rec.units, true);
        }
        for rec in self.registry.values() {
            if rec.state() == StudyState::Running {
                rec.cancel.kill();
            }
        }
    }

    fn handle_scrape_frame(&mut self, frame: &[u8]) {
        let mut slice: &[u8] = frame;
        let Ok(req) = ScrapeRequest::decode_from(&mut slice) else {
            return;
        };
        let reply = self.snapshot().encode_reply(req.format);
        if let Ok(tx) = self
            .transport
            .connect_retry(&req.reply_to, Duration::from_millis(500))
        {
            let _ = tx.send(reply);
        }
    }

    fn send_reply(&self, reply_to: &str, reply: &DaemonReply) {
        let mut buf = BytesMut::new();
        reply.encode_into(&mut buf);
        // The client binds its reply endpoint before sending, so a
        // short retry covers only directory propagation; a vanished
        // client is its own problem.
        if let Ok(tx) = self
            .transport
            .connect_retry(reply_to, Duration::from_secs(1))
        {
            let _ = tx.send(buf.freeze());
        }
    }

    /// Builds the daemon-level aggregate snapshot.
    fn snapshot(&self) -> DaemonSnapshot {
        let usage = self.fair.tenant_usage();
        let mut tenants: Vec<TenantSnapshot> = usage
            .into_iter()
            .map(|u| {
                let load = self.admission.load(&u.tenant);
                TenantSnapshot {
                    tenant: u.tenant,
                    weight: u.weight,
                    queued_jobs: u.queued,
                    running_jobs: u.running_jobs,
                    running_units: u.running_units,
                    dispatched_jobs: u.dispatched,
                    studies: load.studies,
                    groups_reserved: load.groups,
                    units_reserved: load.units,
                }
            })
            .collect();
        // Tenants that submitted but never dispatched a job yet still
        // deserve a row.
        for rec in self.registry.values() {
            if !tenants.iter().any(|t| t.tenant == rec.tenant) {
                let load = self.admission.load(&rec.tenant);
                tenants.push(TenantSnapshot {
                    tenant: rec.tenant.clone(),
                    weight: 1,
                    queued_jobs: 0,
                    running_jobs: 0,
                    running_units: 0,
                    dispatched_jobs: 0,
                    studies: load.studies,
                    groups_reserved: load.groups,
                    units_reserved: load.units,
                });
            }
        }
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let mut studies: Vec<StudySnapshot> = self
            .registry
            .values()
            .map(|r| StudySnapshot {
                id: r.id,
                tenant: r.tenant.clone(),
                priority: r.priority,
                state: r.state(),
                n_groups: r.n_groups as u64,
            })
            .collect();
        studies.sort_by_key(|s| s.id);
        DaemonSnapshot {
            uptime_nanos: self.started_at.elapsed().as_nanos() as u64,
            pool_units: self.fair.total_units(),
            free_units: self.fair.free_units(),
            active_studies: self.running.len(),
            max_active_studies: self.config.max_active_studies,
            queue_depth: self.admission.queue_depth(),
            queue_cap: self.admission.queue_cap(),
            admission: self.admission.stats(),
            tenants,
            studies,
        }
    }
}
