//! The tenant-side client for the daemon control plane.
//!
//! [`DaemonClient`] drives the four lifecycle RPCs — `submit`, `status`,
//! `cancel`, `results` — over the study transport itself: each call
//! binds a throwaway reply endpoint, sends one [`DaemonRequest`] frame
//! to [`names::daemon_ctl`], and waits for the single reply.  Errors are
//! the typed [`ClientError`] the rest of the framework uses; an
//! admission rejection surfaces as
//! [`ClientError::QuotaExceeded`] with the exhausted resource name, end
//! to end from the daemon's admission controller.
//!
//! Live progress never flows through the control plane: scrape the
//! per-study endpoints ([`scrape_study`](DaemonClient::scrape_study))
//! or the daemon aggregate
//! ([`scrape_daemon`](DaemonClient::scrape_daemon)) instead.
//!
//! [`names::daemon_ctl`]: melissa_transport::directory::names::daemon_ctl

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use melissa::client::ClientError;
use melissa::server::checkpoint::unpack_state;
use melissa::{StudyConfig, StudyResults};
use melissa_telemetry::{scrape_endpoint_reply, ScrapeFormat, ScrapeReply};
use melissa_transport::directory::names;
use melissa_transport::{ConnectError, Transport};

use crate::protocol::{DaemonOp, DaemonReply, DaemonRequest, StudyState};

static REPLY_NONCE: AtomicU64 = AtomicU64::new(0);

/// A study's lifecycle view, as returned by
/// [`status`](DaemonClient::status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyStatus {
    /// The study id.
    pub study: u64,
    /// Current lifecycle state.
    pub state: StudyState,
    /// Owning tenant.
    pub tenant: String,
    /// Groups fully integrated (filled once the study finishes).
    pub groups_finished: u64,
    /// Groups in the design.
    pub n_groups: u64,
}

/// A client handle onto one daemon's control plane.
pub struct DaemonClient {
    transport: Arc<dyn Transport>,
    timeout: Duration,
}

fn connect_failure(e: ConnectError) -> ClientError {
    match e {
        ConnectError::NameNotFound { name, directory } => {
            ClientError::NameNotFound { name, directory }
        }
        ConnectError::QuotaExceeded { tenant, resource } => {
            ClientError::QuotaExceeded { tenant, resource }
        }
        ConnectError::NotFound { .. } | ConnectError::Io { .. } => ClientError::ServerUnavailable,
    }
}

impl DaemonClient {
    /// Creates a client speaking to the daemon bound on `transport`.
    /// `timeout` bounds every request round trip.
    pub fn new(transport: Arc<dyn Transport>, timeout: Duration) -> Self {
        Self { transport, timeout }
    }

    /// One request/reply round trip against the control endpoint.
    fn request(&self, op: DaemonOp) -> Result<DaemonReply, ClientError> {
        let reply_to = format!(
            "ctl/reply/{}/{}",
            std::process::id(),
            REPLY_NONCE.fetch_add(1, Ordering::Relaxed)
        );
        let rx = self.transport.bind(&reply_to, 8);
        let result = (|| {
            let tx = self
                .transport
                .connect_retry(&names::daemon_ctl(), self.timeout)
                .map_err(connect_failure)?;
            let mut buf = BytesMut::new();
            DaemonRequest {
                reply_to: reply_to.clone(),
                op,
            }
            .encode_into(&mut buf);
            tx.send(buf.freeze()).map_err(|_| ClientError::SendFailed)?;
            let frame = rx
                .recv_timeout(self.timeout)
                .map_err(|_| ClientError::HandshakeTimeout)?;
            let mut slice: &[u8] = &frame;
            DaemonReply::decode_from(&mut slice).map_err(|e| ClientError::BadHandshake {
                detail: format!("daemon reply: {e}"),
            })
        })();
        self.transport.unbind(&reply_to);
        result
    }

    /// Submits a study under `tenant` at intra-tenant `priority`
    /// (0 = highest) and returns the daemon-assigned study id.  An
    /// admission rejection returns [`ClientError::QuotaExceeded`].
    pub fn submit(
        &self,
        tenant: &str,
        priority: u8,
        config: StudyConfig,
    ) -> Result<u64, ClientError> {
        match self.request(DaemonOp::Submit {
            tenant: tenant.to_string(),
            priority,
            config: Box::new(config),
        })? {
            DaemonReply::Submitted { study } => Ok(study),
            DaemonReply::Rejected { tenant, resource } => {
                Err(ClientError::QuotaExceeded { tenant, resource })
            }
            other => Err(unexpected("submit", &other)),
        }
    }

    /// Fetches a study's lifecycle state.
    pub fn status(&self, study: u64) -> Result<StudyStatus, ClientError> {
        match self.request(DaemonOp::Status { study })? {
            DaemonReply::Status {
                study,
                state,
                tenant,
                groups_finished,
                n_groups,
            } => Ok(StudyStatus {
                study,
                state,
                tenant,
                groups_finished,
                n_groups,
            }),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Cancels a queued or running study (idempotent on finished ones).
    pub fn cancel(&self, study: u64) -> Result<(), ClientError> {
        match self.request(DaemonOp::Cancel { study })? {
            DaemonReply::Cancelled { .. } => Ok(()),
            other => Err(unexpected("cancel", &other)),
        }
    }

    /// Fetches a finished study's statistics, reassembled into the same
    /// [`StudyResults`] the standalone launcher returns — worker states
    /// travel in the bit-exact checkpoint codec, so every statistics
    /// field matches a same-seed standalone run to the last bit.
    pub fn results(&self, study: u64) -> Result<StudyResults, ClientError> {
        match self.request(DaemonOp::Results { study })? {
            DaemonReply::Results {
                p,
                n_timesteps,
                n_cells,
                workers,
                ..
            } => {
                let states = workers
                    .iter()
                    .enumerate()
                    .map(|(i, blob)| {
                        unpack_state(blob, i).map_err(|e| ClientError::BadHandshake {
                            detail: format!("worker state {i}: {e}"),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(StudyResults::from_worker_states(
                    p as usize,
                    n_timesteps as usize,
                    n_cells as usize,
                    states,
                ))
            }
            other => Err(unexpected("results", &other)),
        }
    }

    /// Polls `status` until the study reaches a terminal state or the
    /// deadline passes (then [`ClientError::HandshakeTimeout`]).
    pub fn wait(&self, study: u64, deadline: Duration) -> Result<StudyStatus, ClientError> {
        let start = Instant::now();
        loop {
            let status = self.status(study)?;
            if status.state.is_terminal() {
                return Ok(status);
            }
            if start.elapsed() > deadline {
                return Err(ClientError::HandshakeTimeout);
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Asks the daemon to cancel everything and exit.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.request(DaemonOp::Shutdown)? {
            DaemonReply::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Scrapes the daemon-level aggregate snapshot (queue depths,
    /// per-tenant usage, admission decisions) as rendered text.
    pub fn scrape_daemon(&self, format: ScrapeFormat) -> Result<String, String> {
        match scrape_endpoint_reply(
            &self.transport,
            &names::daemon_telemetry(),
            format,
            self.timeout,
        )? {
            ScrapeReply::Text(t) => Ok(t),
            ScrapeReply::Snapshot(_) => Err("daemon snapshot should render as text".to_string()),
        }
    }

    /// Scrapes live progress from a hosted study's shard `shard` — the
    /// study's own per-shard telemetry endpoint inside its
    /// `study<id>/…` scope.
    pub fn scrape_study(
        &self,
        study: u64,
        shard: usize,
        format: ScrapeFormat,
    ) -> Result<ScrapeReply, String> {
        melissa_telemetry::scrape_reply_in(
            &self.transport,
            &names::study_scope(study),
            shard,
            format,
            self.timeout,
        )
    }
}

fn unexpected(rpc: &str, reply: &DaemonReply) -> ClientError {
    let detail = match reply {
        DaemonReply::Error { detail } => format!("{rpc}: {detail}"),
        other => format!("{rpc}: unexpected reply {other:?}"),
    };
    ClientError::BadHandshake { detail }
}
