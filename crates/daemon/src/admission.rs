//! Admission control: per-tenant quotas and the bounded submission
//! queue, with explicit reject-over-block semantics.
//!
//! Every decision is taken synchronously at submission time — the daemon
//! never parks a client waiting for quota.  A submission that would
//! exceed the tenant's concurrent-study, group or node-unit quota, or
//! that arrives while the daemon-wide wait queue is full, is rejected
//! with the name of the exhausted resource; the client surfaces it as a
//! typed `QuotaExceeded` error.  Admitted studies count against their
//! tenant's quotas from admission until they reach a terminal state, so
//! a queued study reserves its resources — a tenant cannot oversubscribe
//! the pool by stuffing the queue.

use std::collections::HashMap;

/// Per-tenant admission quotas.  A zero-valued field would admit
/// nothing; the defaults are deliberately generous so single-tenant
/// deployments behave like the standalone launcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Studies in flight (queued + running) at once.
    pub max_studies: usize,
    /// Total groups across the tenant's in-flight studies.
    pub max_groups: usize,
    /// Total node units (per-study concurrent-group caps) across the
    /// tenant's in-flight studies.
    pub max_units: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_studies: 8,
            max_groups: 4096,
            max_units: 256,
        }
    }
}

/// A tenant's current in-flight reservation (queued + running studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantLoad {
    /// In-flight studies.
    pub studies: usize,
    /// Groups reserved by in-flight studies.
    pub groups: usize,
    /// Node units reserved by in-flight studies.
    pub units: usize,
}

/// Counters over every admission decision taken, for the daemon-level
/// telemetry snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Submissions admitted.
    pub admitted: u64,
    /// Rejections because the wait queue was full.
    pub rejected_queue: u64,
    /// Rejections on the concurrent-studies quota.
    pub rejected_studies: u64,
    /// Rejections on the groups quota.
    pub rejected_groups: u64,
    /// Rejections on the node-units quota.
    pub rejected_units: u64,
}

impl AdmissionStats {
    /// Total rejections across every resource.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue + self.rejected_studies + self.rejected_groups + self.rejected_units
    }
}

/// The daemon's admission controller.
#[derive(Debug)]
pub struct AdmissionController {
    default_quota: TenantQuota,
    quotas: HashMap<String, TenantQuota>,
    loads: HashMap<String, TenantLoad>,
    queue_depth: usize,
    queue_cap: usize,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Builds a controller with a daemon-wide wait-queue bound and a
    /// default quota for tenants without an explicit entry.
    pub fn new(queue_cap: usize, default_quota: TenantQuota) -> Self {
        Self {
            default_quota,
            quotas: HashMap::new(),
            loads: HashMap::new(),
            queue_depth: 0,
            queue_cap,
            stats: AdmissionStats::default(),
        }
    }

    /// Installs a per-tenant quota override.
    pub fn set_quota(&mut self, tenant: &str, quota: TenantQuota) {
        self.quotas.insert(tenant.to_string(), quota);
    }

    /// The quota that applies to `tenant`.
    pub fn quota(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// The tenant's current reservation.
    pub fn load(&self, tenant: &str) -> TenantLoad {
        self.loads.get(tenant).copied().unwrap_or_default()
    }

    /// Studies admitted but not yet promoted to an active slot.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The wait-queue bound.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Decision counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Decides a submission of `n_groups` groups needing `units` node
    /// units.  `would_queue` says the daemon is out of active-study
    /// slots, so admission also needs a wait-queue slot.  On rejection
    /// the exhausted resource name (`"queue"`, `"studies"`, `"groups"`,
    /// `"units"`) is returned and nothing is reserved.
    pub fn admit(
        &mut self,
        tenant: &str,
        n_groups: usize,
        units: usize,
        would_queue: bool,
    ) -> Result<(), &'static str> {
        let quota = self.quota(tenant);
        let load = self.load(tenant);
        let resource = if load.studies + 1 > quota.max_studies {
            Some("studies")
        } else if load.groups + n_groups > quota.max_groups {
            Some("groups")
        } else if load.units + units > quota.max_units {
            Some("units")
        } else if would_queue && self.queue_depth >= self.queue_cap {
            Some("queue")
        } else {
            None
        };
        if let Some(resource) = resource {
            match resource {
                "studies" => self.stats.rejected_studies += 1,
                "groups" => self.stats.rejected_groups += 1,
                "units" => self.stats.rejected_units += 1,
                _ => self.stats.rejected_queue += 1,
            }
            return Err(resource);
        }
        let entry = self.loads.entry(tenant.to_string()).or_default();
        entry.studies += 1;
        entry.groups += n_groups;
        entry.units += units;
        if would_queue {
            self.queue_depth += 1;
        }
        self.stats.admitted += 1;
        Ok(())
    }

    /// A queued study was promoted to an active slot.
    pub fn promoted(&mut self) {
        self.queue_depth = self.queue_depth.saturating_sub(1);
    }

    /// An in-flight study reached a terminal state (or was cancelled out
    /// of the queue with `from_queue`); its reservation is returned.
    pub fn release(&mut self, tenant: &str, n_groups: usize, units: usize, from_queue: bool) {
        if let Some(load) = self.loads.get_mut(tenant) {
            load.studies = load.studies.saturating_sub(1);
            load.groups = load.groups.saturating_sub(n_groups);
            load.units = load.units.saturating_sub(units);
        }
        if from_queue {
            self.queue_depth = self.queue_depth.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_quota() -> TenantQuota {
        TenantQuota {
            max_studies: 2,
            max_groups: 10,
            max_units: 4,
        }
    }

    #[test]
    fn admits_until_the_study_quota_then_rejects() {
        let mut ac = AdmissionController::new(16, small_quota());
        assert!(ac.admit("acme", 2, 1, false).is_ok());
        assert!(ac.admit("acme", 2, 1, false).is_ok());
        assert_eq!(ac.admit("acme", 2, 1, false), Err("studies"));
        // Another tenant is unaffected.
        assert!(ac.admit("globex", 2, 1, false).is_ok());
        assert_eq!(ac.stats().admitted, 3);
        assert_eq!(ac.stats().rejected_studies, 1);
    }

    #[test]
    fn group_and_unit_quotas_reject_with_their_own_resource() {
        let mut ac = AdmissionController::new(16, small_quota());
        assert_eq!(ac.admit("acme", 11, 1, false), Err("groups"));
        assert_eq!(ac.admit("acme", 2, 5, false), Err("units"));
        assert!(ac.admit("acme", 10, 4, false).is_ok());
        // Quota fully reserved: the next study of any size hits the
        // group quota (checked before units).
        assert_eq!(ac.admit("acme", 1, 1, false), Err("groups"));
        assert_eq!(ac.stats().rejected_groups, 2);
        assert_eq!(ac.stats().rejected_units, 1);
    }

    #[test]
    fn full_wait_queue_rejects_instead_of_blocking() {
        let mut ac = AdmissionController::new(1, small_quota());
        assert!(ac.admit("acme", 1, 1, true).is_ok());
        assert_eq!(ac.admit("globex", 1, 1, true), Err("queue"));
        // A free active slot bypasses the queue bound entirely.
        assert!(ac.admit("globex", 1, 1, false).is_ok());
        assert_eq!(ac.stats().rejected_queue, 1);
    }

    #[test]
    fn release_returns_the_reservation() {
        let mut ac = AdmissionController::new(4, small_quota());
        assert!(ac.admit("acme", 5, 2, false).is_ok());
        assert!(ac.admit("acme", 5, 2, false).is_ok());
        assert_eq!(ac.admit("acme", 1, 1, false), Err("studies"));
        ac.release("acme", 5, 2, false);
        assert!(ac.admit("acme", 5, 2, false).is_ok());
        assert_eq!(
            ac.load("acme"),
            TenantLoad {
                studies: 2,
                groups: 10,
                units: 4
            }
        );
    }

    #[test]
    fn promotion_and_queue_cancel_free_queue_slots() {
        let mut ac = AdmissionController::new(1, small_quota());
        assert!(ac.admit("acme", 1, 1, true).is_ok());
        assert_eq!(ac.queue_depth(), 1);
        ac.promoted();
        assert_eq!(ac.queue_depth(), 0);
        assert!(ac.admit("acme", 1, 1, true).is_ok());
        ac.release("acme", 1, 1, true);
        assert_eq!(ac.queue_depth(), 0);
        assert_eq!(ac.load("acme").studies, 1);
    }
}
