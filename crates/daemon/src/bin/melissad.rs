//! `melissad` — the multi-tenant Melissa study daemon.
//!
//! Starts a daemon on the chosen transport backend and serves study
//! submissions until a client sends the `shutdown` RPC.
//!
//! ```text
//! melissad [--backend in-process|tcp] [--units N] [--max-active N] [--queue-cap N]
//! ```

use std::sync::Arc;
use std::time::Duration;

use melissa_daemon::{Daemon, DaemonConfig};
use melissa_transport::{make_transport, Transport, TransportKind};

fn usage() -> ! {
    eprintln!(
        "usage: melissad [--backend in-process|tcp] [--units N] \
         [--max-active N] [--queue-cap N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut backend = TransportKind::InProcess;
    let mut config = DaemonConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--backend" => {
                backend = match value("--backend").as_str() {
                    "in-process" => TransportKind::InProcess,
                    "tcp" => TransportKind::Tcp,
                    other => {
                        eprintln!("unknown backend '{other}'");
                        usage()
                    }
                }
            }
            "--units" => config.pool_units = value("--units").parse().unwrap_or_else(|_| usage()),
            "--max-active" => {
                config.max_active_studies =
                    value("--max-active").parse().unwrap_or_else(|_| usage())
            }
            "--queue-cap" => {
                config.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
    }

    let transport: Arc<dyn Transport> = make_transport(backend);
    println!(
        "melissad: serving on '{}' (pool {} units, {} active studies, queue cap {})",
        transport.backend_name(),
        config.pool_units,
        config.max_active_studies,
        config.queue_cap
    );
    let daemon = Daemon::start(transport, config);

    // Park until a client's `shutdown` RPC makes the control loop exit.
    // The daemon handle's own kill switch stays untouched, so `stop`
    // just joins the already-finished loop.
    loop {
        std::thread::sleep(Duration::from_millis(200));
        if daemon_finished(&daemon) {
            break;
        }
    }
    daemon.stop();
    println!("melissad: control loop exited, bye");
}

/// The control loop unbinds its endpoints on exit, so a failed connect
/// to the control endpoint means the daemon is done.
fn daemon_finished(daemon: &Daemon) -> bool {
    daemon
        .transport()
        .connect(&melissa_transport::directory::names::daemon_ctl())
        .is_err()
}
