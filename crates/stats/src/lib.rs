//! # melissa-stats — iterative (one-pass) statistics
//!
//! Single-pass, numerically stable statistics used by the Melissa in transit
//! sensitivity-analysis framework (Terraz et al., SC'17, Section 3.1).
//!
//! Computing statistics on `N` samples classically needs `O(N)` memory to
//! hold the samples.  The update formulas implemented here (Welford 1962;
//! Chan, Golub & LeVeque 1982; Pébay 2008) bring the requirement down to
//! `O(1)` per tracked statistic: the running value is updated as soon as a
//! new sample arrives and the sample can then be discarded.  This is the key
//! enabler for avoiding intermediate files in multi-run sensitivity studies.
//!
//! All accumulators support two operations:
//!
//! * [`update`](OnlineMoments::update) — fold in one new sample, and
//! * [`merge`](OnlineMoments::merge) — combine two partial accumulators
//!   (Pébay's pairwise formulas), enabling parallel reduction trees.
//!
//! Iterative results are *exact* with respect to their two-pass
//! counterparts up to floating-point rounding; the property tests in this
//! crate assert agreement to tight tolerances for arbitrary inputs.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`moments`] | mean, variance, skewness, kurtosis ([`OnlineMoments`]) |
//! | [`covariance`] | covariance / correlation of paired samples ([`OnlineCovariance`]) |
//! | [`minmax`] | running minimum / maximum with arg-tracking ([`MinMax`]) |
//! | [`threshold`] | threshold-exceedance probability ([`ThresholdExceedance`]) |
//! | [`quantiles`] | Robbins–Monro per-cell quantile estimation ([`FieldQuantiles`]) |
//! | [`field`] | vectorised per-cell statistics over mesh-sized fields |
//! | [`tile`] | cache-blocked tile storage and disjoint parallel sweeps |
//! | [`batch`] | two-pass reference implementations used for validation |
//! | [`checkpoint_format`] | field tables of the v2/v3 checkpoint wire format every accumulator's `raw_state` round-trips through (documentation only) |
//!
//! ## Quick example
//!
//! ```
//! use melissa_stats::OnlineMoments;
//!
//! let mut acc = OnlineMoments::new();
//! for x in [1.0, 2.0, 3.0, 4.0] {
//!     acc.update(x);
//! }
//! assert_eq!(acc.count(), 4);
//! assert!((acc.mean() - 2.5).abs() < 1e-12);
//! assert!((acc.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
//! ```

pub mod batch;
pub mod checkpoint_format;
pub mod covariance;
pub mod field;
pub mod minmax;
pub mod moments;
pub mod quantiles;
pub mod threshold;
pub mod tile;

pub use covariance::OnlineCovariance;
pub use field::{FieldCovariance, FieldMinMax, FieldMoments, FieldThreshold};
pub use minmax::MinMax;
pub use moments::OnlineMoments;
pub use quantiles::FieldQuantiles;
pub use threshold::ThresholdExceedance;
pub use tile::{tile_cells, AlignedVec, DisjointSlices};

/// Statistics that Melissa Server can be configured to compute on each
/// field (paper Section 4.1: beside Sobol' indices, the server computes
/// other iterative statistics on the `Y^A`/`Y^B` samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatKind {
    /// Running mean.
    Mean,
    /// Unbiased sample variance.
    Variance,
    /// Skewness (third standardised moment).
    Skewness,
    /// Excess kurtosis (fourth standardised moment minus 3).
    Kurtosis,
    /// Running minimum.
    Min,
    /// Running maximum.
    Max,
    /// Probability of exceeding a threshold.
    ThresholdExceedance,
    /// Robbins–Monro quantile / order-statistics estimates
    /// (arXiv:1905.04180; [`FieldQuantiles`]).
    Quantiles,
    /// First-order and total Sobol' indices (handled by `melissa-sobol`).
    Sobol,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_kind_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let set: HashSet<StatKind> = [StatKind::Mean, StatKind::Variance, StatKind::Mean]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
