//! Vectorised per-cell statistics over mesh-sized fields.
//!
//! Melissa computes *ubiquitous* statistics: one accumulator per mesh cell
//! (and per timestep).  Storing a struct per cell would scatter the hot
//! update loop across memory, so these types use a structure-of-arrays
//! layout (`Vec<f64>` per moment — few enough arrays per type that each
//! sweep stays prefetcher-friendly, unlike the `4 + 4p`-array Sobol' state,
//! which lives in the cell-contiguous tiled layout of `melissa-sobol`) and
//! update all cells of an incoming field in one Rayon-parallel sweep.
//!
//! On the server's hot path these accumulators are not updated through
//! their own `update` sweeps at all: the fused ingest kernel
//! (`melissa_sobol::FusedSlabUpdate`) folds them together with the Sobol'
//! state in a single pass, via the `#[doc(hidden)] fused_parts_mut`
//! accessors below.  The scalar recurrences are shared, so both paths are
//! bit-identical.

use rayon::prelude::*;

use crate::{MinMax, OnlineMoments, ThresholdExceedance};

/// Minimum chunk size for parallel field sweeps; below this the Rayon
/// dispatch overhead dominates the arithmetic.
const PAR_CHUNK: usize = 4096;

/// Per-cell mean and 2nd–4th central moments over a field sample stream.
///
/// Equivalent to `Vec<OnlineMoments>` but stored as one array per moment.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMoments {
    n: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    m3: Vec<f64>,
    m4: Vec<f64>,
}

impl FieldMoments {
    /// Creates accumulators for a field of `len` cells.
    pub fn new(len: usize) -> Self {
        Self {
            n: 0,
            mean: vec![0.0; len],
            m2: vec![0.0; len],
            m3: vec![0.0; len],
            m4: vec![0.0; len],
        }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when tracking zero cells.
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Number of field samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds in one field sample (one value per cell).
    ///
    /// # Panics
    /// Panics if `sample.len() != self.len()`.
    pub fn update(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.len(), "field sample length mismatch");
        self.n += 1;
        let n = self.n as f64;
        let nn_term = n * n - 3.0 * n + 3.0;
        self.mean
            .par_chunks_mut(PAR_CHUNK)
            .zip(self.m2.par_chunks_mut(PAR_CHUNK))
            .zip(self.m3.par_chunks_mut(PAR_CHUNK))
            .zip(self.m4.par_chunks_mut(PAR_CHUNK))
            .zip(sample.par_chunks(PAR_CHUNK))
            .for_each(|((((mean, m2), m3), m4), xs)| {
                for i in 0..xs.len() {
                    let delta = xs[i] - mean[i];
                    let delta_n = delta / n;
                    let delta_n2 = delta_n * delta_n;
                    let term1 = delta * delta_n * (n - 1.0);
                    mean[i] += delta_n;
                    m4[i] +=
                        term1 * delta_n2 * nn_term + 6.0 * delta_n2 * m2[i] - 4.0 * delta_n * m3[i];
                    m3[i] += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2[i];
                    m2[i] += term1;
                }
            });
    }

    /// Per-cell running mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-cell unbiased sample variance.
    pub fn sample_variance(&self) -> Vec<f64> {
        if self.n < 2 {
            return vec![0.0; self.len()];
        }
        let denom = self.n as f64 - 1.0;
        self.m2.iter().map(|m2| m2 / denom).collect()
    }

    /// Per-cell skewness.
    pub fn skewness(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.m2
            .iter()
            .zip(&self.m3)
            .map(|(&m2, &m3)| {
                if self.n < 2 || m2 <= 0.0 {
                    0.0
                } else {
                    n.sqrt() * m3 / m2.powf(1.5)
                }
            })
            .collect()
    }

    /// Per-cell excess kurtosis.
    pub fn excess_kurtosis(&self) -> Vec<f64> {
        let n = self.n as f64;
        self.m2
            .iter()
            .zip(&self.m4)
            .map(|(&m2, &m4)| {
                if self.n < 2 || m2 <= 0.0 {
                    0.0
                } else {
                    n * m4 / (m2 * m2) - 3.0
                }
            })
            .collect()
    }

    /// Scalar accumulator view of one cell (for tests and spot checks).
    pub fn cell(&self, i: usize) -> OnlineMoments {
        OnlineMoments::from_raw_state(self.n, self.mean[i], self.m2[i], self.m3[i], self.m4[i])
    }

    /// Merges another field accumulator (pairwise Pébay formulas per cell).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "field length mismatch");
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        self.mean
            .par_chunks_mut(PAR_CHUNK)
            .zip(self.m2.par_chunks_mut(PAR_CHUNK))
            .zip(self.m3.par_chunks_mut(PAR_CHUNK))
            .zip(self.m4.par_chunks_mut(PAR_CHUNK))
            .zip(other.mean.par_chunks(PAR_CHUNK))
            .zip(other.m2.par_chunks(PAR_CHUNK))
            .zip(other.m3.par_chunks(PAR_CHUNK))
            .zip(other.m4.par_chunks(PAR_CHUNK))
            .for_each(|(((((((mean, m2), m3), m4), omean), om2), om3), om4)| {
                for i in 0..mean.len() {
                    let delta = omean[i] - mean[i];
                    let delta2 = delta * delta;
                    let new_m4 = m4[i]
                        + om4[i]
                        + delta2 * delta2 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
                        + 6.0 * delta2 * (na * na * om2[i] + nb * nb * m2[i]) / (n * n)
                        + 4.0 * delta * (na * om3[i] - nb * m3[i]) / n;
                    let new_m3 = m3[i]
                        + om3[i]
                        + delta2 * delta * na * nb * (na - nb) / (n * n)
                        + 3.0 * delta * (na * om2[i] - nb * m2[i]) / n;
                    let new_m2 = m2[i] + om2[i] + delta2 * na * nb / n;
                    mean[i] += delta * nb / n;
                    m2[i] = new_m2;
                    m3[i] = new_m3;
                    m4[i] = new_m4;
                }
            });
        self.n += other.n;
    }

    /// Raw state accessors for checkpoint serialisation:
    /// `(n, mean, m2, m3, m4)`.
    pub fn raw_state(&self) -> (u64, &[f64], &[f64], &[f64], &[f64]) {
        (self.n, &self.mean, &self.m2, &self.m3, &self.m4)
    }

    /// Kernel-internal accessor for the fused server sweep: bumps the
    /// sample count by `add_samples` and hands out the pre-bump count plus
    /// the four moment arrays `(n_before, mean, m2, m3, m4)`.  The caller
    /// must fold exactly `add_samples` samples into every cell, using the
    /// same scalar recurrence as [`update`](Self::update).
    #[doc(hidden)]
    pub fn fused_parts_mut(
        &mut self,
        add_samples: u64,
    ) -> (u64, &mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        let before = self.n;
        self.n += add_samples;
        (
            before,
            &mut self.mean,
            &mut self.m2,
            &mut self.m3,
            &mut self.m4,
        )
    }

    /// Rebuilds from checkpointed raw state.
    ///
    /// # Panics
    /// Panics if the four moment arrays have different lengths.
    pub fn from_raw_state(
        n: u64,
        mean: Vec<f64>,
        m2: Vec<f64>,
        m3: Vec<f64>,
        m4: Vec<f64>,
    ) -> Self {
        assert!(
            mean.len() == m2.len() && m2.len() == m3.len() && m3.len() == m4.len(),
            "inconsistent moment array lengths"
        );
        Self {
            n,
            mean,
            m2,
            m3,
            m4,
        }
    }
}

/// Per-cell running min/max over a field sample stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMinMax {
    n: u64,
    min: Vec<f64>,
    max: Vec<f64>,
}

impl FieldMinMax {
    /// Creates accumulators for `len` cells.
    pub fn new(len: usize) -> Self {
        Self {
            n: 0,
            min: vec![f64::INFINITY; len],
            max: vec![f64::NEG_INFINITY; len],
        }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.min.len()
    }

    /// True when tracking zero cells.
    pub fn is_empty(&self) -> bool {
        self.min.is_empty()
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds in one field sample.
    pub fn update(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.len(), "field sample length mismatch");
        self.n += 1;
        self.min
            .par_chunks_mut(PAR_CHUNK)
            .zip(self.max.par_chunks_mut(PAR_CHUNK))
            .zip(sample.par_chunks(PAR_CHUNK))
            .for_each(|((mins, maxs), xs)| {
                for i in 0..xs.len() {
                    mins[i] = mins[i].min(xs[i]);
                    maxs[i] = maxs[i].max(xs[i]);
                }
            });
    }

    /// Per-cell minimum (infinite when no samples seen).
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Per-cell maximum (−infinite when no samples seen).
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Merges another envelope over the same cells (exact).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "field length mismatch");
        for (a, &b) in self.min.iter_mut().zip(&other.min) {
            *a = a.min(b);
        }
        for (a, &b) in self.max.iter_mut().zip(&other.max) {
            *a = a.max(b);
        }
        self.n += other.n;
    }

    /// Scalar view of one cell.
    pub fn cell(&self, i: usize) -> MinMax {
        let mut mm = MinMax::new();
        if self.n > 0 {
            mm.update(self.min[i]);
            mm.update(self.max[i]);
        }
        mm
    }

    /// Raw state `(n, min, max)` for checkpointing.
    pub fn raw_state(&self) -> (u64, &[f64], &[f64]) {
        (self.n, &self.min, &self.max)
    }

    /// Kernel-internal accessor for the fused server sweep: bumps the
    /// sample count by `add_samples` and hands out `(min, max)`.
    #[doc(hidden)]
    pub fn fused_parts_mut(&mut self, add_samples: u64) -> (&mut [f64], &mut [f64]) {
        self.n += add_samples;
        (&mut self.min, &mut self.max)
    }

    /// Rebuilds from checkpointed raw state.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths.
    pub fn from_raw_state(n: u64, min: Vec<f64>, max: Vec<f64>) -> Self {
        assert_eq!(min.len(), max.len(), "inconsistent min/max array lengths");
        Self { n, min, max }
    }
}

/// Per-cell threshold exceedance over a field sample stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldThreshold {
    threshold: f64,
    n: u64,
    exceeded: Vec<u64>,
}

impl FieldThreshold {
    /// Creates accumulators for `len` cells watching `threshold`.
    pub fn new(len: usize, threshold: f64) -> Self {
        Self {
            threshold,
            n: 0,
            exceeded: vec![0; len],
        }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.exceeded.len()
    }

    /// True when tracking zero cells.
    pub fn is_empty(&self) -> bool {
        self.exceeded.is_empty()
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The watched threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Folds in one field sample.
    pub fn update(&mut self, sample: &[f64]) {
        assert_eq!(sample.len(), self.len(), "field sample length mismatch");
        self.n += 1;
        let t = self.threshold;
        self.exceeded
            .par_chunks_mut(PAR_CHUNK)
            .zip(sample.par_chunks(PAR_CHUNK))
            .for_each(|(counts, xs)| {
                for i in 0..xs.len() {
                    counts[i] += (xs[i] > t) as u64;
                }
            });
    }

    /// Merges another accumulator watching the same threshold over the
    /// same cells (exact: counts add).
    ///
    /// # Panics
    /// Panics on length or threshold mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.len(), other.len(), "field length mismatch");
        assert_eq!(
            self.threshold.to_bits(),
            other.threshold.to_bits(),
            "threshold mismatch"
        );
        for (a, &b) in self.exceeded.iter_mut().zip(&other.exceeded) {
            *a += b;
        }
        self.n += other.n;
    }

    /// Per-cell exceedance probability.
    pub fn probability(&self) -> Vec<f64> {
        if self.n == 0 {
            return vec![0.0; self.len()];
        }
        let n = self.n as f64;
        self.exceeded.iter().map(|&c| c as f64 / n).collect()
    }

    /// Raw state `(threshold, n, exceeded)` for checkpointing.
    pub fn raw_state(&self) -> (f64, u64, &[u64]) {
        (self.threshold, self.n, &self.exceeded)
    }

    /// Rebuilds from checkpointed raw state.
    pub fn from_raw_state(threshold: f64, n: u64, exceeded: Vec<u64>) -> Self {
        Self {
            threshold,
            n,
            exceeded,
        }
    }

    /// Kernel-internal accessor for the fused server sweep: bumps the
    /// sample count by `add_samples` and hands out the exceedance counts.
    #[doc(hidden)]
    pub fn fused_parts_mut(&mut self, add_samples: u64) -> (f64, &mut [u64]) {
        self.n += add_samples;
        (self.threshold, &mut self.exceeded)
    }

    /// Scalar view of one cell, built directly from the cell's raw state
    /// (the exceedance accumulator is fully determined by
    /// `(threshold, n, exceeded)` — no sample replay needed).
    pub fn cell(&self, i: usize) -> ThresholdExceedance {
        ThresholdExceedance::from_raw_state(self.threshold, self.n, self.exceeded[i])
    }
}

/// Per-cell covariance of two synchronised field streams.
///
/// Used by the iterative Sobol' field state: each parameter `k` needs the
/// per-cell co-moments of `(Y^B, Y^{C^k})` and `(Y^A, Y^{C^k})`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldCovariance {
    n: u64,
    mean_x: Vec<f64>,
    mean_y: Vec<f64>,
    c2: Vec<f64>,
}

impl FieldCovariance {
    /// Creates accumulators for `len` cells.
    pub fn new(len: usize) -> Self {
        Self {
            n: 0,
            mean_x: vec![0.0; len],
            mean_y: vec![0.0; len],
            c2: vec![0.0; len],
        }
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.c2.len()
    }

    /// True when tracking zero cells.
    pub fn is_empty(&self) -> bool {
        self.c2.is_empty()
    }

    /// Number of paired samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds in one paired field sample.
    pub fn update(&mut self, xs: &[f64], ys: &[f64]) {
        assert_eq!(xs.len(), self.len(), "field sample length mismatch (x)");
        assert_eq!(ys.len(), self.len(), "field sample length mismatch (y)");
        self.n += 1;
        let n = self.n as f64;
        self.mean_x
            .par_chunks_mut(PAR_CHUNK)
            .zip(self.mean_y.par_chunks_mut(PAR_CHUNK))
            .zip(self.c2.par_chunks_mut(PAR_CHUNK))
            .zip(xs.par_chunks(PAR_CHUNK))
            .zip(ys.par_chunks(PAR_CHUNK))
            .for_each(|((((mx, my), c2), x), y)| {
                for i in 0..x.len() {
                    let dx = x[i] - mx[i];
                    mx[i] += dx / n;
                    my[i] += (y[i] - my[i]) / n;
                    c2[i] += dx * (y[i] - my[i]);
                }
            });
    }

    /// Per-cell unbiased covariance.
    pub fn sample_covariance(&self) -> Vec<f64> {
        if self.n < 2 {
            return vec![0.0; self.len()];
        }
        let denom = self.n as f64 - 1.0;
        self.c2.iter().map(|c| c / denom).collect()
    }

    /// Per-cell unnormalised co-moments.
    pub fn c2(&self) -> &[f64] {
        &self.c2
    }

    /// Raw state `(n, mean_x, mean_y, c2)` for checkpointing.
    pub fn raw_state(&self) -> (u64, &[f64], &[f64], &[f64]) {
        (self.n, &self.mean_x, &self.mean_y, &self.c2)
    }

    /// Rebuilds from checkpointed raw state.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths.
    pub fn from_raw_state(n: u64, mean_x: Vec<f64>, mean_y: Vec<f64>, c2: Vec<f64>) -> Self {
        assert!(
            mean_x.len() == mean_y.len() && mean_y.len() == c2.len(),
            "inconsistent covariance array lengths"
        );
        Self {
            n,
            mean_x,
            mean_y,
            c2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OnlineCovariance;

    fn sample_fields(cells: usize, samples: usize) -> Vec<Vec<f64>> {
        (0..samples)
            .map(|s| {
                (0..cells)
                    .map(|c| ((s * 31 + c * 17) % 97) as f64 * 0.13 - 2.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn field_moments_match_per_cell_scalar_accumulators() {
        let fields = sample_fields(50, 20);
        let mut fm = FieldMoments::new(50);
        let mut scalar: Vec<OnlineMoments> = vec![OnlineMoments::new(); 50];
        for f in &fields {
            fm.update(f);
            for (acc, &x) in scalar.iter_mut().zip(f) {
                acc.update(x);
            }
        }
        for (c, sc) in scalar.iter().enumerate() {
            let cell = fm.cell(c);
            assert!((cell.mean() - sc.mean()).abs() < 1e-12);
            assert!((cell.sample_variance() - sc.sample_variance()).abs() < 1e-12);
            assert!((cell.skewness() - sc.skewness()).abs() < 1e-9);
            assert!((cell.excess_kurtosis() - sc.excess_kurtosis()).abs() < 1e-9);
        }
    }

    #[test]
    fn field_moments_merge_matches_sequential() {
        let fields = sample_fields(33, 16);
        let mut a = FieldMoments::new(33);
        let mut b = FieldMoments::new(33);
        for f in &fields[..7] {
            a.update(f);
        }
        for f in &fields[7..] {
            b.update(f);
        }
        a.merge(&b);
        let mut seq = FieldMoments::new(33);
        for f in &fields {
            seq.update(f);
        }
        assert_eq!(a.count(), seq.count());
        for c in 0..33 {
            assert!((a.mean()[c] - seq.mean()[c]).abs() < 1e-12);
            assert!((a.sample_variance()[c] - seq.sample_variance()[c]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn field_moments_reject_wrong_length() {
        FieldMoments::new(4).update(&[1.0, 2.0]);
    }

    #[test]
    fn field_minmax_tracks_envelope() {
        let mut mm = FieldMinMax::new(3);
        mm.update(&[1.0, -2.0, 5.0]);
        mm.update(&[0.0, 3.0, 5.0]);
        assert_eq!(mm.min(), &[0.0, -2.0, 5.0]);
        assert_eq!(mm.max(), &[1.0, 3.0, 5.0]);
        assert_eq!(mm.count(), 2);
    }

    #[test]
    fn field_threshold_probability() {
        let mut t = FieldThreshold::new(2, 0.5);
        t.update(&[0.0, 1.0]);
        t.update(&[1.0, 1.0]);
        t.update(&[0.2, 0.4]);
        let p = t.probability();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-15);
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn field_covariance_matches_scalar() {
        let xs = sample_fields(20, 15);
        let ys: Vec<Vec<f64>> = xs
            .iter()
            .map(|f| f.iter().map(|v| v * 2.0 + 1.0).collect())
            .collect();
        let mut fc = FieldCovariance::new(20);
        let mut scalar = vec![OnlineCovariance::new(); 20];
        for (x, y) in xs.iter().zip(&ys) {
            fc.update(x, y);
            for (acc, (&a, &b)) in scalar.iter_mut().zip(x.iter().zip(y)) {
                acc.update(a, b);
            }
        }
        let cov = fc.sample_covariance();
        for c in 0..20 {
            assert!((cov[c] - scalar[c].sample_covariance()).abs() < 1e-12);
        }
    }

    #[test]
    fn raw_state_roundtrips() {
        let fields = sample_fields(11, 5);
        let mut fm = FieldMoments::new(11);
        for f in &fields {
            fm.update(f);
        }
        let (n, mean, m2, m3, m4) = {
            let (n, a, b, c, d) = fm.raw_state();
            (n, a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec())
        };
        let back = FieldMoments::from_raw_state(n, mean, m2, m3, m4);
        assert_eq!(fm, back);
    }
}
