//! Running minimum / maximum with argument tracking.

/// One-pass min/max accumulator.
///
/// Tracks the extreme values of a sample stream together with the index of
/// the sample that produced them (useful for locating extreme events in a
/// multi-run study without storing the ensemble).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    n: u64,
    min: f64,
    max: f64,
    argmin: u64,
    argmax: u64,
}

impl Default for MinMax {
    fn default() -> Self {
        Self {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            argmin: 0,
            argmax: 0,
        }
    }
}

impl MinMax {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one sample in; the sample index is the current count.
    #[inline]
    pub fn update(&mut self, x: f64) {
        if x < self.min {
            self.min = x;
            self.argmin = self.n;
        }
        if x > self.max {
            self.max = x;
            self.argmax = self.n;
        }
        self.n += 1;
    }

    /// Merges another accumulator.  `other`'s argument indices are assumed to
    /// refer to samples that followed this accumulator's stream.
    pub fn merge(&mut self, other: &Self) {
        if other.min < self.min {
            self.min = other.min;
            self.argmin = self.n + other.argmin;
        }
        if other.max > self.max {
            self.max = other.max;
            self.argmax = self.n + other.argmax;
        }
        self.n += other.n;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Minimum, or `None` when no samples have been seen.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum, or `None` when no samples have been seen.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Index of the minimal sample, or `None` when empty.
    pub fn argmin(&self) -> Option<u64> {
        (self.n > 0).then_some(self.argmin)
    }

    /// Index of the maximal sample, or `None` when empty.
    pub fn argmax(&self) -> Option<u64> {
        (self.n > 0).then_some(self.argmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_none() {
        let acc = MinMax::new();
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
        assert_eq!(acc.argmin(), None);
    }

    #[test]
    fn tracks_extremes_and_arguments() {
        let mut acc = MinMax::new();
        for x in [3.0, -1.0, 7.0, 7.0, -1.0] {
            acc.update(x);
        }
        assert_eq!(acc.min(), Some(-1.0));
        assert_eq!(acc.max(), Some(7.0));
        // First occurrence wins.
        assert_eq!(acc.argmin(), Some(1));
        assert_eq!(acc.argmax(), Some(2));
    }

    #[test]
    fn merge_matches_sequential() {
        let data = [5.0, 2.0, 9.0, -3.0, 4.4, 9.0, -3.0];
        for split in 0..=data.len() {
            let mut a = MinMax::new();
            data[..split].iter().for_each(|&x| a.update(x));
            let mut b = MinMax::new();
            data[split..].iter().for_each(|&x| b.update(x));
            a.merge(&b);
            let mut seq = MinMax::new();
            data.iter().for_each(|&x| seq.update(x));
            assert_eq!(a, seq, "split {split}");
        }
    }
}
