//! Threshold-exceedance probability.
//!
//! Melissa's early deployments (Terraz et al., ISAV 2016 — reference \[44\]
//! of the paper) computed threshold exceedance alongside mean/variance; it is
//! the one-pass estimator of `P(Y > threshold)`.

/// One-pass accumulator counting samples strictly above a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdExceedance {
    threshold: f64,
    n: u64,
    exceeded: u64,
}

impl ThresholdExceedance {
    /// Creates an accumulator for `P(Y > threshold)`.
    pub fn new(threshold: f64) -> Self {
        Self {
            threshold,
            n: 0,
            exceeded: 0,
        }
    }

    /// Rebuilds an accumulator from its raw state — `O(1)`, the inverse of
    /// reading ([`threshold`](Self::threshold), [`count`](Self::count),
    /// [`exceedances`](Self::exceedances)).
    ///
    /// # Panics
    /// Panics if `exceeded > n` (no sample stream can produce that).
    pub fn from_raw_state(threshold: f64, n: u64, exceeded: u64) -> Self {
        assert!(
            exceeded <= n,
            "exceedance count {exceeded} larger than sample count {n}"
        );
        Self {
            threshold,
            n,
            exceeded,
        }
    }

    /// Folds one sample in.
    #[inline]
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        if x > self.threshold {
            self.exceeded += 1;
        }
    }

    /// Merges another accumulator.
    ///
    /// # Panics
    /// Panics if the thresholds differ — merging accumulators for different
    /// thresholds is a logic error.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.threshold.to_bits(),
            other.threshold.to_bits(),
            "cannot merge exceedance accumulators with different thresholds"
        );
        self.n += other.n;
        self.exceeded += other.exceeded;
    }

    /// The threshold this accumulator watches.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Number of samples that exceeded the threshold.
    pub fn exceedances(&self) -> u64 {
        self.exceeded
    }

    /// Estimated exceedance probability; `0.0` when empty.
    pub fn probability(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.exceeded as f64 / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_strict_exceedances() {
        let mut acc = ThresholdExceedance::new(1.0);
        for x in [0.5, 1.0, 1.5, 2.0] {
            acc.update(x);
        }
        assert_eq!(acc.exceedances(), 2);
        assert!((acc.probability() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ThresholdExceedance::new(0.0);
        a.update(1.0);
        let mut b = ThresholdExceedance::new(0.0);
        b.update(-1.0);
        b.update(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.exceedances(), 2);
    }

    #[test]
    #[should_panic(expected = "different thresholds")]
    fn merge_rejects_mismatched_thresholds() {
        let mut a = ThresholdExceedance::new(0.0);
        a.merge(&ThresholdExceedance::new(1.0));
    }

    #[test]
    fn empty_probability_is_zero() {
        assert_eq!(ThresholdExceedance::new(3.0).probability(), 0.0);
    }
}
