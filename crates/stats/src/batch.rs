//! Two-pass ("classical") reference statistics.
//!
//! These are the textbook `O(N)`-memory implementations the paper's
//! *classical postmortem* workflow would run after reading the ensemble back
//! from disk.  They exist for two purposes:
//!
//! 1. validation — the iterative accumulators must agree with them up to
//!    rounding (unit and property tests), and
//! 2. ablation — `benches/ablation_twopass.rs` compares the one-pass and
//!    two-pass costs and memory footprints.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (two-pass); `0.0` when `n < 2`.
pub fn sample_variance(data: &[f64]) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n as f64 - 1.0)
}

/// Population variance (two-pass); `0.0` for an empty slice.
pub fn population_variance(data: &[f64]) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64
}

/// Skewness `√n·M3/M2^{3/2}` (two-pass); `0.0` when undefined.
pub fn skewness(data: &[f64]) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(data);
    let m2: f64 = data.iter().map(|x| (x - m).powi(2)).sum();
    let m3: f64 = data.iter().map(|x| (x - m).powi(3)).sum();
    if m2 <= 0.0 {
        0.0
    } else {
        (n as f64).sqrt() * m3 / m2.powf(1.5)
    }
}

/// Excess kurtosis `n·M4/M2² − 3` (two-pass); `0.0` when undefined.
pub fn excess_kurtosis(data: &[f64]) -> f64 {
    let n = data.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(data);
    let m2: f64 = data.iter().map(|x| (x - m).powi(2)).sum();
    let m4: f64 = data.iter().map(|x| (x - m).powi(4)).sum();
    if m2 <= 0.0 {
        0.0
    } else {
        n as f64 * m4 / (m2 * m2) - 3.0
    }
}

/// Unbiased sample covariance (two-pass).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn sample_covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (n as f64 - 1.0)
}

/// Pearson correlation coefficient (two-pass); `0.0` when either marginal
/// variance is degenerate.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    let vx = sample_variance(xs);
    let vy = sample_variance(ys);
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    sample_covariance(xs, ys) / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[]), 0.0);
        assert_eq!(population_variance(&[]), 0.0);
    }

    #[test]
    fn hand_computed_values() {
        let d = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&d) - 5.0).abs() < 1e-15);
        assert!((population_variance(&d) - 4.0).abs() < 1e-15);
        assert!((sample_variance(&d) - 32.0 / 7.0).abs() < 1e-15);
    }

    #[test]
    fn covariance_of_identical_streams_is_variance() {
        let d: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        assert!((sample_covariance(&d, &d) - sample_variance(&d)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn covariance_length_mismatch_panics() {
        sample_covariance(&[1.0], &[1.0, 2.0]);
    }
}
