//! Iterative per-cell quantiles via Robbins–Monro stochastic approximation.
//!
//! Order statistics are the one statistics family the moment accumulators
//! cannot express: a per-cell median or 95th-percentile map needs its own
//! iterative estimator.  Following the Melissa quantile follow-up paper
//! (Ribés, Terraz, Iooss, Fournier, Raffin, *Large scale in transit
//! computation of quantiles for ensemble runs*, arXiv:1905.04180), each
//! target probability `α` is tracked by the Robbins–Monro recursion
//!
//! ```text
//! q_{n+1} = q_n + C_n / n^γ · (α − 1{Y_{n+1} ≤ q_n})
//! ```
//!
//! with the paper's **adaptive step size**: the unknowable constant `C` is
//! replaced by the running sample range `C_n = max(Y_1…Y_n) − min(Y_1…Y_n)`,
//! so the step magnitude self-calibrates to the data scale without any
//! a-priori knowledge — the requirement for in transit processing, where
//! the data is seen once and discarded.  The range is **borrowed from a
//! [`FieldMinMax`] envelope maintained by the caller** on the same sample
//! stream: Melissa Server tracks the per-cell envelope anyway, so storing
//! a second copy inside every quantile record would only duplicate state
//! and memory traffic on the fused ingest path.
//!
//! The exponent `γ ∈ (½, 1]` trades convergence speed against noise.  The
//! default is `γ = 0.75`: at `γ = 1` the scheme needs `C · f(q_α) > ½`
//! for the optimal rate, which low-density tails (the 1 %/99 %
//! percentiles) violate; a sub-linear exponent keeps late steps large
//! enough to reach the tails, and measured convergence on the analytic
//! test functions is several times faster (see `fig_quantiles`).
//!
//! ## Memory layout
//!
//! [`FieldQuantiles`] stores one packed record of `m` doubles per cell
//! (`[q_0, …, q_{m−1}]` for `m` target probabilities), cell-contiguous in
//! 64-byte-aligned storage, swept in L1-sized tiles — the same
//! cache-blocked discipline as the ubiquitous Sobol' state, so a cell's
//! whole quantile record stays L1-resident while the incoming field
//! stripe is hot.  For the canonical seven probabilities (1 %, 5 %, 25 %,
//! 50 %, 75 %, 95 %, 99 %) a record is 56 bytes — **one cache line per
//! cell**.
//!
//! On the server's hot path the records are not updated through
//! [`update`](FieldQuantiles::update) but folded together with every other
//! statistic by the fused ingest kernel (`melissa_sobol::FusedSlabUpdate`)
//! via the `#[doc(hidden)]` kernel hooks below; the scalar recurrence is
//! shared, so both paths are bit-identical.

use rayon::prelude::*;

use crate::field::FieldMinMax;
use crate::tile::{tile_cells, AlignedVec, DisjointSlices};

/// The seven target probabilities of the follow-up paper's EDF study
/// (1 %, 5 %, 25 %, 50 %, 75 %, 95 %, 99 %): percentile maps plus an
/// inter-quartile and an inter-decile band per cell.
pub const PAPER_PROBS: [f64; 7] = [0.01, 0.05, 0.25, 0.50, 0.75, 0.95, 0.99];

/// Per-cell Robbins–Monro quantile estimates over a field sample stream.
///
/// Tracks an arbitrary vector of target probabilities per cell, in the
/// cache-blocked tile layout described in the [module docs](self).  The
/// adaptive step scale is read from a caller-maintained [`FieldMinMax`]
/// envelope over the same stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldQuantiles {
    probs: Vec<f64>,
    cells: usize,
    n: u64,
    /// Robbins–Monro step exponent `γ`.
    gamma: f64,
    /// Doubles per record: `probs.len()`.
    stride: usize,
    /// Cells per cache tile (power of two, from [`tile_cells`]).
    tile: usize,
    /// Cell-contiguous packed records, `cells × stride` doubles.
    state: AlignedVec,
}

/// Robbins–Monro step scale `n^{−γ}` at post-increment sample count `n`.
///
/// Both the standalone [`FieldQuantiles::update`] sweep and the fused
/// server ingest must call this same helper so the two paths stay
/// bit-identical (`powf` is not guaranteed to equal `1/n` at `γ = 1`).
#[doc(hidden)]
#[inline]
pub fn rm_step_scale(n: u64, gamma: f64) -> f64 {
    (n as f64).powf(-gamma)
}

/// Updates the packed quantile records of one tile with one field sample.
///
/// All slices are tile-local views of the same cell range: `recs` holds
/// `ys.len()` records of `probs.len()` doubles, and `mins`/`maxs` are the
/// envelope stripes **already folded with this sample** (the adaptive
/// scale).  `first` is true on the very first sample (Robbins–Monro warm
/// start: every estimate initialises to it); `scale` is
/// [`rm_step_scale`] at the post-increment count.  Shared by
/// [`FieldQuantiles::update`] and the fused server ingest so both paths
/// are bit-identical.
#[doc(hidden)]
pub fn update_tile_quantiles(
    recs: &mut [f64],
    ys: &[f64],
    mins: &[f64],
    maxs: &[f64],
    probs: &[f64],
    first: bool,
    scale: f64,
) {
    // Monomorphise the common probability counts (the canonical seven,
    // plus the small sets tests and bands use): with `M` a compile-time
    // constant the per-cell loop fully unrolls and the record stride
    // becomes a literal.
    match probs.len() {
        1 => single_dispatch::<1>(recs, ys, mins, maxs, probs, first, scale),
        2 => single_dispatch::<2>(recs, ys, mins, maxs, probs, first, scale),
        3 => single_dispatch::<3>(recs, ys, mins, maxs, probs, first, scale),
        5 => single_dispatch::<5>(recs, ys, mins, maxs, probs, first, scale),
        7 => single_dispatch::<7>(recs, ys, mins, maxs, probs, first, scale),
        _ => update_tile_quantiles_generic(recs, ys, mins, maxs, probs, first, scale),
    }
}

/// Picks the widest single-sample kernel the host supports (results are
/// identical either way; see [`update_tile_pair_m_avx2`]).
#[inline]
fn single_dispatch<const M: usize>(
    recs: &mut [f64],
    ys: &[f64],
    mins: &[f64],
    maxs: &[f64],
    probs: &[f64],
    first: bool,
    scale: f64,
) {
    #[cfg(target_arch = "x86_64")]
    if M >= 4 && avx2_available() {
        // SAFETY: AVX2 support just checked.
        unsafe { update_tile_quantiles_m_avx2::<M>(recs, ys, mins, maxs, probs, first, scale) };
        return;
    }
    update_tile_quantiles_m::<M>(recs, ys, mins, maxs, probs, first, scale)
}

/// Folds **two** consecutive samples into one tile in a single pass over
/// the records, *including the envelope update*: per cell the envelope is
/// folded with sample `a`, the `a`-step applied (post-increment count
/// `n`), then the same for `b` at `n + 1` — exactly the arithmetic (and
/// operation order) of `FieldMinMax::update(a)` +
/// [`update_tile_quantiles`]`(a)` + the same for `b`, but each record and
/// envelope entry is loaded and stored once.  This is the shape of the
/// fused server ingest, which always folds the i.i.d. pair `(Y^A, Y^B)`
/// and owns the envelope family in the same sweep.
///
/// `first` means sample `a` is the very first sample (warm start); `b`
/// then lands as a regular update at count 2.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn update_tile_quantiles_pair(
    recs: &mut [f64],
    yas: &[f64],
    ybs: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    first: bool,
    scale_a: f64,
    scale_b: f64,
) {
    match probs.len() {
        1 => pair_dispatch::<1>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b),
        2 => pair_dispatch::<2>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b),
        3 => pair_dispatch::<3>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b),
        5 => pair_dispatch::<5>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b),
        7 => pair_dispatch::<7>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b),
        _ => {
            for (ys, scale, fst) in [(yas, scale_a, first), (ybs, scale_b, false)] {
                for (m, &v) in mins.iter_mut().zip(ys) {
                    *m = m.min(v);
                }
                for (m, &v) in maxs.iter_mut().zip(ys) {
                    *m = m.max(v);
                }
                update_tile_quantiles_generic(recs, ys, mins, maxs, probs, fst, scale);
            }
        }
    }
}

/// Picks the widest pair kernel the host supports (results are identical
/// either way; see [`update_tile_pair_m_avx2`]).
#[allow(clippy::too_many_arguments)]
#[inline]
fn pair_dispatch<const M: usize>(
    recs: &mut [f64],
    yas: &[f64],
    ybs: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    first: bool,
    scale_a: f64,
    scale_b: f64,
) {
    #[cfg(target_arch = "x86_64")]
    if M >= 4 && avx2_available() {
        // SAFETY: AVX2 support just checked.
        unsafe {
            update_tile_pair_m_avx2::<M>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b)
        };
        return;
    }
    update_tile_pair_m::<M>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b)
}

/// True when the AVX2 fast path for the quantile kernels is usable.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    // std caches the cpuid result; this is one relaxed atomic load.
    std::arch::is_x86_feature_detected!("avx2")
}

/// AVX2-codegen copy of the pair kernel: the *same* Rust body as
/// [`update_tile_pair_m`], compiled with AVX2 enabled so LLVM vectorises
/// the per-cell estimate loop four lanes wide.  No FMA contraction and
/// identical IEEE operation order per element, so results are
/// bit-identical to the baseline build — asserted by the
/// `avx2_pair_kernel_matches_scalar` test and, transitively, by every
/// fused-vs-reference property test.
///
/// # Safety
/// Caller must ensure AVX2 is available ([`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn update_tile_pair_m_avx2<const M: usize>(
    recs: &mut [f64],
    yas: &[f64],
    ybs: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    first: bool,
    scale_a: f64,
    scale_b: f64,
) {
    update_tile_pair_m::<M>(recs, yas, ybs, mins, maxs, probs, first, scale_a, scale_b)
}

/// AVX2-codegen copy of the single-sample kernel; see
/// [`update_tile_pair_m_avx2`] for the bit-identity argument.
///
/// # Safety
/// Caller must ensure AVX2 is available ([`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn update_tile_quantiles_m_avx2<const M: usize>(
    recs: &mut [f64],
    ys: &[f64],
    mins: &[f64],
    maxs: &[f64],
    probs: &[f64],
    first: bool,
    scale: f64,
) {
    update_tile_quantiles_m::<M>(recs, ys, mins, maxs, probs, first, scale)
}

/// Compile-time-`M` kernel for [`update_tile_quantiles_pair`]: fuses the
/// envelope updates for both samples with the two Robbins–Monro steps.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn update_tile_pair_m<const M: usize>(
    recs: &mut [f64],
    yas: &[f64],
    ybs: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    first: bool,
    scale_a: f64,
    scale_b: f64,
) {
    let alphas: [f64; M] = probs.try_into().expect("specialisation arity");
    for ((((r, &ya), &yb), lo), hi) in recs
        .chunks_exact_mut(M)
        .zip(yas)
        .zip(ybs)
        .zip(mins.iter_mut())
        .zip(maxs.iter_mut())
    {
        // Fold Y^A into the envelope unconditionally: on a warm start the
        // envelope may already carry history (cold quantiles retrofitted
        // onto a restored min/max state after a legacy-checkpoint
        // restore), which must be widened, never reset.
        let mut l = lo.min(ya);
        let mut h = hi.max(ya);
        if first {
            // Warm start on Y^A, then Y^B as a regular update at n = 2.
            r.fill(ya);
        } else {
            let step = (h - l) * scale_a;
            for (q, &alpha) in r.iter_mut().zip(&alphas) {
                *q += step * (alpha - f64::from(ya <= *q));
            }
        }
        l = l.min(yb);
        h = h.max(yb);
        let step = (h - l) * scale_b;
        for (q, &alpha) in r.iter_mut().zip(&alphas) {
            *q += step * (alpha - f64::from(yb <= *q));
        }
        *lo = l;
        *hi = h;
    }
}

/// Compile-time-`M` specialisation of [`update_tile_quantiles_generic`]
/// (identical arithmetic, identical operation order).
#[inline(always)]
fn update_tile_quantiles_m<const M: usize>(
    recs: &mut [f64],
    ys: &[f64],
    mins: &[f64],
    maxs: &[f64],
    probs: &[f64],
    first: bool,
    scale: f64,
) {
    let alphas: [f64; M] = probs.try_into().expect("specialisation arity");
    if first {
        for (r, &y) in recs.chunks_exact_mut(M).zip(ys) {
            r.fill(y);
        }
        return;
    }
    for (((r, &y), &lo), &hi) in recs.chunks_exact_mut(M).zip(ys).zip(mins).zip(maxs) {
        // Adaptive step: the caller-maintained running range calibrates
        // the magnitude.
        let step = (hi - lo) * scale;
        for (q, &alpha) in r.iter_mut().zip(&alphas) {
            *q += step * (alpha - f64::from(y <= *q));
        }
    }
}

/// Updates one tile's records for a runtime probability count; see
/// [`update_tile_quantiles`].
#[inline]
fn update_tile_quantiles_generic(
    recs: &mut [f64],
    ys: &[f64],
    mins: &[f64],
    maxs: &[f64],
    probs: &[f64],
    first: bool,
    scale: f64,
) {
    let stride = probs.len();
    if first {
        for (r, &y) in recs.chunks_exact_mut(stride).zip(ys) {
            r.fill(y);
        }
        return;
    }
    for (((r, &y), &lo), &hi) in recs.chunks_exact_mut(stride).zip(ys).zip(mins).zip(maxs) {
        let step = (hi - lo) * scale;
        for (q, &alpha) in r.iter_mut().zip(probs) {
            *q += step * (alpha - f64::from(y <= *q));
        }
    }
}

impl FieldQuantiles {
    /// Creates accumulators for `cells` cells tracking `probs`
    /// (default step exponent `γ = 0.75`, see the [module docs](self)).
    ///
    /// # Panics
    /// Panics if `cells == 0`, `probs` is empty, or any probability lies
    /// outside the open interval `(0, 1)`.
    pub fn new(cells: usize, probs: &[f64]) -> Self {
        Self::with_gamma(cells, probs, 0.75)
    }

    /// Creates accumulators with an explicit step exponent `γ ∈ (½, 1]`.
    ///
    /// # Panics
    /// Panics on an empty field/probability vector, out-of-range
    /// probabilities, or `γ` outside `(½, 1]`.
    pub fn with_gamma(cells: usize, probs: &[f64], gamma: f64) -> Self {
        assert!(cells > 0, "need at least one cell");
        assert!(!probs.is_empty(), "need at least one target probability");
        for &p in probs {
            assert!(p > 0.0 && p < 1.0, "target probability {p} outside (0, 1)");
        }
        assert!(
            gamma > 0.5 && gamma <= 1.0,
            "Robbins–Monro exponent {gamma} outside (1/2, 1]"
        );
        let stride = probs.len();
        Self {
            probs: probs.to_vec(),
            cells,
            n: 0,
            gamma,
            stride,
            tile: tile_cells(stride),
            state: AlignedVec::zeroed(cells * stride),
        }
    }

    /// The tracked target probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of cells tracked.
    pub fn len(&self) -> usize {
        self.cells
    }

    /// True when tracking zero cells (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cells == 0
    }

    /// Number of field samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The step exponent `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Doubles per cell record (`probs.len()`), for memory accounting.
    pub fn doubles_per_cell(&self) -> usize {
        self.stride
    }

    /// Folds in one field sample (one value per cell), tile-parallel.
    ///
    /// `envelope` must track the running min/max of the **same sample
    /// stream** and must already include `sample` (i.e. call
    /// [`FieldMinMax::update`] first); it provides the adaptive step
    /// scale.  Melissa Server maintains that envelope anyway, which is
    /// why it is borrowed rather than duplicated per record.
    ///
    /// # Panics
    /// Panics on a length mismatch with `sample` or `envelope`, or when
    /// the envelope has seen fewer samples than this accumulator is about
    /// to have (a stale envelope would mis-scale the step).
    pub fn update(&mut self, sample: &[f64], envelope: &FieldMinMax) {
        assert_eq!(sample.len(), self.cells, "field sample length mismatch");
        assert_eq!(envelope.len(), self.cells, "envelope length mismatch");
        self.n += 1;
        assert!(
            envelope.count() >= self.n,
            "envelope lags the quantile stream ({} < {})",
            envelope.count(),
            self.n
        );
        let first = self.n == 1;
        let scale = rm_step_scale(self.n, self.gamma);
        let (probs, stride, tile, cells) = (&self.probs[..], self.stride, self.tile, self.cells);
        let (mins, maxs) = (envelope.min(), envelope.max());
        let n_tiles = cells.div_ceil(tile);
        let state = DisjointSlices::new(&mut self.state);
        let state = &state;
        (0..n_tiles).into_par_iter().for_each(move |t| {
            let c0 = t * tile;
            let c1 = (c0 + tile).min(cells);
            // SAFETY: tile cell ranges are pairwise disjoint.
            let recs = unsafe { state.range_mut(c0 * stride..c1 * stride) };
            update_tile_quantiles(
                recs,
                &sample[c0..c1],
                &mins[c0..c1],
                &maxs[c0..c1],
                probs,
                first,
                scale,
            );
        });
    }

    /// Merges another accumulator covering the same cells and
    /// probabilities, tile-parallel.
    ///
    /// Robbins–Monro iterates carry no sufficient statistic, so the merge
    /// is the count-weighted mean of the two estimates (counts add
    /// exactly) — associative up to floating-point rounding, which is
    /// what reduction trees and multi-server sharding need
    /// (property-tested in this crate).
    ///
    /// # Panics
    /// Panics if cells, probabilities or `γ` differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.cells, other.cells, "cell-count mismatch");
        assert_eq!(self.probs, other.probs, "probability vector mismatch");
        assert_eq!(
            self.gamma.to_bits(),
            other.gamma.to_bits(),
            "step exponent mismatch"
        );
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let wb = other.n as f64 / (self.n + other.n) as f64;
        let (stride, tile, cells) = (self.stride, self.tile, self.cells);
        let n_tiles = cells.div_ceil(tile);
        let state = DisjointSlices::new(&mut self.state);
        let state = &state;
        let other_state: &[f64] = &other.state;
        (0..n_tiles).into_par_iter().for_each(move |t| {
            let c0 = t * tile;
            let c1 = (c0 + tile).min(cells);
            // SAFETY: tile cell ranges are pairwise disjoint.
            let recs = unsafe { state.range_mut(c0 * stride..c1 * stride) };
            let others = &other_state[c0 * stride..c1 * stride];
            for (qa, &qb) in recs.iter_mut().zip(others) {
                *qa += (qb - *qa) * wb;
            }
        });
        self.n += other.n;
    }

    /// Record of one cell.
    #[inline]
    fn rec(&self, cell: usize) -> &[f64] {
        &self.state[cell * self.stride..(cell + 1) * self.stride]
    }

    /// Estimate of quantile `probs()[idx]` at one cell.
    pub fn quantile_at(&self, cell: usize, idx: usize) -> f64 {
        assert!(idx < self.probs.len(), "probability index out of range");
        self.rec(cell)[idx]
    }

    /// Per-cell estimate field of quantile `probs()[idx]`.
    pub fn quantile_field(&self, idx: usize) -> Vec<f64> {
        assert!(idx < self.probs.len(), "probability index out of range");
        (0..self.cells).map(|c| self.rec(c)[idx]).collect()
    }

    /// All quantile estimates of one cell, in `probs()` order.
    pub fn cell_quantiles(&self, cell: usize) -> Vec<f64> {
        self.rec(cell).to_vec()
    }

    /// Convergence signal: the widest possible next Robbins–Monro step
    /// over all cells, `max_cells (range · (n+1)^{−γ})`, with the range
    /// read from the caller's envelope — the analogue of the Sobol' CI
    /// width for order statistics.  `∞` before any sample; shrinks as
    /// `n^{−γ}` once the range has stabilised.
    ///
    /// # Panics
    /// Panics on an envelope length mismatch.
    pub fn max_step_width(&self, envelope: &FieldMinMax) -> f64 {
        assert_eq!(envelope.len(), self.cells, "envelope length mismatch");
        if self.n == 0 {
            return f64::INFINITY;
        }
        let scale = rm_step_scale(self.n + 1, self.gamma);
        envelope
            .min()
            .iter()
            .zip(envelope.max())
            .map(|(&lo, &hi)| (hi - lo) * scale)
            .fold(0.0, f64::max)
    }

    /// Per-probability convergence signals: for target probability `α`
    /// the widest possible next Robbins–Monro step over all cells is
    /// `max_cells(range) · (n+1)^{−γ} · max(α, 1−α)` — the indicator
    /// error `1{Y ≤ θ} − α` has magnitude at most `max(α, 1−α)`, so
    /// extreme percentiles (1 %/99 %) carry a wider bound and converge
    /// last.  All-∞ before any sample.  The α-independent envelope of
    /// these is [`max_step_width`](Self::max_step_width).
    ///
    /// # Panics
    /// Panics on an envelope length mismatch.
    pub fn step_widths(&self, envelope: &FieldMinMax) -> Vec<f64> {
        assert_eq!(envelope.len(), self.cells, "envelope length mismatch");
        if self.n == 0 {
            return vec![f64::INFINITY; self.probs.len()];
        }
        let scale = rm_step_scale(self.n + 1, self.gamma);
        let max_range = envelope
            .min()
            .iter()
            .zip(envelope.max())
            .map(|(&lo, &hi)| hi - lo)
            .fold(0.0, f64::max);
        self.probs
            .iter()
            .map(|&p| max_range * scale * p.max(1.0 - p))
            .collect()
    }

    /// Raw state `(n, gamma, probs, records)` for checkpointing.  The
    /// record array is the tiled storage verbatim (`cells × m` doubles,
    /// cell-contiguous).
    pub fn raw_state(&self) -> (u64, f64, &[f64], &[f64]) {
        (self.n, self.gamma, &self.probs, &self.state)
    }

    /// Rebuilds from checkpointed raw state.
    ///
    /// # Panics
    /// Panics if `flat` is not `cells × probs.len()` doubles or the shape
    /// is degenerate.
    pub fn from_raw_state(cells: usize, probs: &[f64], gamma: f64, n: u64, flat: &[f64]) -> Self {
        let mut acc = Self::with_gamma(cells, probs, gamma);
        assert_eq!(
            flat.len(),
            cells * acc.stride,
            "bad quantile checkpoint payload length"
        );
        acc.n = n;
        acc.state.copy_from_slice(flat);
        acc
    }

    /// Kernel-internal accessor for the fused server sweep: bumps the
    /// sample count by `add_samples` and hands out
    /// `(n_before, gamma, stride, probs, records)`.  The caller must fold
    /// exactly `add_samples` samples into every cell using the
    /// [`update_tile_quantiles_pair`] kernel with [`rm_step_scale`].
    #[doc(hidden)]
    #[allow(clippy::type_complexity)]
    pub fn fused_parts_mut(
        &mut self,
        add_samples: u64,
    ) -> (u64, f64, usize, &[f64], &mut AlignedVec) {
        let before = self.n;
        self.n += add_samples;
        (
            before,
            self.gamma,
            self.stride,
            &self.probs,
            &mut self.state,
        )
    }
}

/// Test/bench support: a quantile accumulator plus the min/max envelope
/// it borrows its adaptive step scale from, fed together (as the server
/// does).  One shared definition keeps every validation path — unit
/// tests, proptests, the `fig_quantiles` bench — feeding the estimator
/// the same way; not part of the API surface.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct TrackedQuantiles {
    pub quant: FieldQuantiles,
    pub env: FieldMinMax,
}

impl TrackedQuantiles {
    /// Fresh accumulator + envelope over `cells` cells.
    #[doc(hidden)]
    pub fn new(cells: usize, probs: &[f64]) -> Self {
        Self {
            quant: FieldQuantiles::new(cells, probs),
            env: FieldMinMax::new(cells),
        }
    }

    /// Folds one field sample into the envelope, then the estimates.
    #[doc(hidden)]
    pub fn update(&mut self, sample: &[f64]) {
        self.env.update(sample);
        self.quant.update(sample, &self.env);
    }
}

/// Test/bench support: exact quantile of a sorted sample at probability
/// `alpha` (nearest-rank definition) — the reference the Robbins–Monro
/// estimates are validated against.  Not part of the API surface.
#[doc(hidden)]
pub fn sorted_quantile(sorted: &[f64], alpha: f64) -> f64 {
    let rank = ((alpha * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Bench-only direct entries to the two pair kernels (scalar / AVX2);
/// not part of the API surface.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn __bench_pair_scalar_m7(
    recs: &mut [f64],
    a: &[f64],
    b: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    scale_a: f64,
    scale_b: f64,
) {
    update_tile_pair_m::<7>(recs, a, b, mins, maxs, probs, false, scale_a, scale_b)
}

/// See [`__bench_pair_scalar_m7`].
#[cfg(target_arch = "x86_64")]
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn __bench_pair_avx2_m7(
    recs: &mut [f64],
    a: &[f64],
    b: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    probs: &[f64],
    scale_a: f64,
    scale_b: f64,
) {
    assert!(avx2_available());
    // SAFETY: availability asserted.
    unsafe { update_tile_pair_m_avx2::<7>(recs, a, b, mins, maxs, probs, false, scale_a, scale_b) }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared test/bench feeder (envelope first, then estimates).
    use super::TrackedQuantiles as Tracked;

    fn uniform_stream(n: usize, seed: u64) -> Vec<f64> {
        // Simple LCG: deterministic, uniform enough for convergence tests.
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * 10.0 - 5.0
            })
            .collect()
    }

    #[test]
    fn converges_to_uniform_quantiles() {
        let samples = uniform_stream(20_000, 42);
        let mut acc = Tracked::new(1, &PAPER_PROBS);
        for &y in &samples {
            acc.update(&[y]);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let range = sorted[sorted.len() - 1] - sorted[0];
        for (j, &alpha) in PAPER_PROBS.iter().enumerate() {
            let exact = sorted_quantile(&sorted, alpha);
            let est = acc.quant.quantile_at(0, j);
            assert!(
                (est - exact).abs() < 0.03 * range,
                "alpha {alpha}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn per_cell_estimates_are_independent() {
        // Cell 1's stream is cell 0's shifted by 100: every quantile must
        // shift by exactly the same amount (same range, same indicators).
        let samples = uniform_stream(5000, 7);
        let mut acc = Tracked::new(2, &[0.25, 0.5, 0.75]);
        for &y in &samples {
            acc.update(&[y, y + 100.0]);
        }
        for j in 0..3 {
            let d = acc.quant.quantile_at(1, j) - acc.quant.quantile_at(0, j);
            assert!((d - 100.0).abs() < 1e-9, "quantile {j} shift {d}");
        }
    }

    #[test]
    fn update_spanning_many_tiles_matches_single_cell() {
        // 3000 cells spans several tiles; every cell fed the same stream
        // must match the 1-cell reference bit for bit.
        let cells = 3000;
        let samples = uniform_stream(500, 3);
        let mut field = Tracked::new(cells, &PAPER_PROBS);
        let mut single = Tracked::new(1, &PAPER_PROBS);
        let mut row = vec![0.0; cells];
        for &y in &samples {
            row.iter_mut().for_each(|v| *v = y);
            field.update(&row);
            single.update(&[y]);
        }
        for cell in [0usize, 1023, 1024, 1025, cells - 1] {
            for j in 0..PAPER_PROBS.len() {
                assert_eq!(
                    field.quant.quantile_at(cell, j),
                    single.quant.quantile_at(0, j),
                    "cell {cell} quantile {j}"
                );
            }
        }
    }

    #[test]
    fn merge_is_count_weighted() {
        let samples = uniform_stream(4000, 11);
        let mut a = Tracked::new(1, &[0.5]);
        let mut b = Tracked::new(1, &[0.5]);
        for &y in &samples[..3000] {
            a.update(&[y]);
        }
        for &y in &samples[3000..] {
            b.update(&[y]);
        }
        let (qa, qb) = (a.quant.quantile_at(0, 0), b.quant.quantile_at(0, 0));
        a.quant.merge(&b.quant);
        assert_eq!(a.quant.count(), 4000);
        let expect = qa + (qb - qa) * 1000.0 / 4000.0;
        assert_eq!(a.quant.quantile_at(0, 0), expect);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let samples = uniform_stream(100, 5);
        let mut a = Tracked::new(3, &[0.1, 0.9]);
        let mut row = vec![0.0; 3];
        for &y in &samples {
            row.iter_mut().for_each(|v| *v = y);
            a.update(&row);
        }
        let before = a.quant.clone();
        a.quant.merge(&FieldQuantiles::new(3, &[0.1, 0.9]));
        assert_eq!(a.quant, before);
        let mut empty = FieldQuantiles::new(3, &[0.1, 0.9]);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn max_step_width_shrinks() {
        let samples = uniform_stream(1000, 9);
        let mut acc = Tracked::new(1, &[0.5]);
        assert!(acc.quant.max_step_width(&acc.env).is_infinite());
        for &y in &samples[..100] {
            acc.update(&[y]);
        }
        let at_100 = acc.quant.max_step_width(&acc.env);
        for &y in &samples[100..] {
            acc.update(&[y]);
        }
        let at_1000 = acc.quant.max_step_width(&acc.env);
        assert!(
            at_1000 < at_100,
            "step width must shrink: {at_100} -> {at_1000}"
        );
        assert!(
            at_1000 < 0.1,
            "range ~10 at n ~1000, γ = ¾ ⇒ small step: {at_1000}"
        );
    }

    #[test]
    fn step_widths_track_the_indicator_magnitude_per_probability() {
        let samples = uniform_stream(500, 11);
        let mut acc = Tracked::new(2, &[0.01, 0.5, 0.99]);
        assert!(acc
            .quant
            .step_widths(&acc.env)
            .iter()
            .all(|w| w.is_infinite()));
        let mut row = vec![0.0; 2];
        for &y in &samples {
            row.iter_mut().for_each(|v| *v = y);
            acc.update(&row);
        }
        let widths = acc.quant.step_widths(&acc.env);
        assert_eq!(widths.len(), 3);
        // Extreme percentiles carry the widest bound (max(α, 1−α)); the
        // median the narrowest; 1 % and 99 % are symmetric.
        assert!(widths[0] > widths[1] && widths[2] > widths[1]);
        assert_eq!(widths[0], widths[2]);
        // The α-independent bound envelopes every per-probability width.
        let envelope = acc.quant.max_step_width(&acc.env);
        assert!(widths.iter().all(|&w| w <= envelope));
        // The slowest estimate is exactly max(α, 1−α) of the envelope.
        assert_eq!(widths[2], envelope * 0.99);
    }

    #[test]
    fn raw_state_roundtrips() {
        let samples = uniform_stream(200, 13);
        let mut acc = FieldQuantiles::with_gamma(5, &[0.25, 0.75], 0.8);
        let mut env = FieldMinMax::new(5);
        let mut row = vec![0.0; 5];
        for (i, &y) in samples.iter().enumerate() {
            row.iter_mut()
                .enumerate()
                .for_each(|(c, v)| *v = y + (c * i) as f64 * 0.01);
            env.update(&row);
            acc.update(&row, &env);
        }
        let (n, gamma, probs, flat) = {
            let (n, g, p, f) = acc.raw_state();
            (n, g, p.to_vec(), f.to_vec())
        };
        let back = FieldQuantiles::from_raw_state(5, &probs, gamma, n, &flat);
        assert_eq!(acc, back);
    }

    /// The AVX2 pair kernel must be bit-identical to the scalar pair
    /// kernel.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_pair_kernel_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // nothing to compare on this host
        }
        let cells = 533; // odd, spans several vectors and a ragged tail
        let a = uniform_stream(cells, 70);
        let b = uniform_stream(cells, 71);
        for (round, first) in [(1u64, true), (5u64, false)] {
            let m = PAPER_PROBS.len();
            let mut scalar_recs = vec![0.25f64; cells * m];
            let mut avx_recs = scalar_recs.clone();
            let mut mins_s = vec![-0.5f64; cells];
            let mut maxs_s = vec![0.5f64; cells];
            let mut mins_v = mins_s.clone();
            let mut maxs_v = maxs_s.clone();
            let scale_a = rm_step_scale(round, 0.75);
            let scale_b = rm_step_scale(round + 1, 0.75);
            update_tile_pair_m::<7>(
                &mut scalar_recs,
                &a,
                &b,
                &mut mins_s,
                &mut maxs_s,
                &PAPER_PROBS,
                first,
                scale_a,
                scale_b,
            );
            // SAFETY: AVX2 detected above.
            unsafe {
                update_tile_pair_m_avx2::<7>(
                    &mut avx_recs,
                    &a,
                    &b,
                    &mut mins_v,
                    &mut maxs_v,
                    &PAPER_PROBS,
                    first,
                    scale_a,
                    scale_b,
                )
            };
            let same = scalar_recs
                .iter()
                .zip(&avx_recs)
                .chain(mins_s.iter().zip(&mins_v))
                .chain(maxs_s.iter().zip(&maxs_v))
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "AVX2 kernel diverged from scalar (first = {first})");
        }
    }

    /// The pair kernel (fused ingest shape) must match the sequential
    /// reference: envelope update then quantile update, per sample.
    #[test]
    fn pair_kernel_matches_two_sequential_updates() {
        let samples_a = uniform_stream(97, 80);
        let samples_b = uniform_stream(97, 81);
        let probs = [0.05, 0.5, 0.95];
        let mut seq = Tracked::new(97, &probs);
        seq.update(&samples_a);
        seq.update(&samples_b);
        let mut recs = vec![0.0f64; 97 * probs.len()];
        let mut mins = vec![f64::INFINITY; 97];
        let mut maxs = vec![f64::NEG_INFINITY; 97];
        update_tile_quantiles_pair(
            &mut recs,
            &samples_a,
            &samples_b,
            &mut mins,
            &mut maxs,
            &probs,
            true,
            rm_step_scale(1, seq.quant.gamma()),
            rm_step_scale(2, seq.quant.gamma()),
        );
        let (_, _, _, flat) = seq.quant.raw_state();
        assert!(
            recs.iter()
                .zip(flat)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "pair kernel diverged from sequential updates"
        );
        assert_eq!(mins, seq.env.min());
        assert_eq!(maxs, seq.env.max());
    }

    /// A warm start must *widen* a pre-existing envelope, never reset it:
    /// the fused sweep hands the pair kernel live `FieldMinMax` stripes
    /// that can carry history while the quantiles are cold (a legacy
    /// checkpoint restore retrofits cold quantiles onto a restored
    /// envelope).  Exercises a specialised arity (7, AVX2 when available)
    /// and the runtime-probs fallback (4) so both arms provably treat the
    /// envelope identically.
    #[test]
    fn warm_start_folds_preexisting_envelope() {
        let cells = 37;
        let a = uniform_stream(cells, 90); // samples lie in (-5, 5)
        let b = uniform_stream(cells, 91);
        let scale_b = rm_step_scale(2, 0.75);
        for probs in [&PAPER_PROBS[..], &[0.2, 0.4, 0.6, 0.8][..]] {
            let m = probs.len();
            let mut recs = vec![0.0f64; cells * m];
            // Restored history strictly wider than the incoming samples.
            let mut mins = vec![-50.0f64; cells];
            let mut maxs = vec![75.0f64; cells];
            update_tile_quantiles_pair(
                &mut recs,
                &a,
                &b,
                &mut mins,
                &mut maxs,
                probs,
                true,
                rm_step_scale(1, 0.75),
                scale_b,
            );
            assert!(
                mins.iter().all(|&v| v == -50.0) && maxs.iter().all(|&v| v == 75.0),
                "m = {m}: warm start reset the restored envelope"
            );
            // The Y^B step must be scaled by the *restored* range.
            for (c, (&ya, &yb)) in a.iter().zip(&b).enumerate() {
                let step = (75.0 - -50.0) * scale_b;
                for (j, &alpha) in probs.iter().enumerate() {
                    let expect = ya + step * (alpha - f64::from(yb <= ya));
                    assert_eq!(
                        recs[c * m + j].to_bits(),
                        expect.to_bits(),
                        "m = {m}, cell {c}, alpha {alpha}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn degenerate_probability_panics() {
        FieldQuantiles::new(1, &[0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "probability vector mismatch")]
    fn merge_rejects_mismatched_probs() {
        let mut a = FieldQuantiles::new(1, &[0.5]);
        a.merge(&FieldQuantiles::new(1, &[0.25]));
    }

    #[test]
    #[should_panic(expected = "envelope lags")]
    fn stale_envelope_is_rejected() {
        let mut q = FieldQuantiles::new(2, &[0.5]);
        let env = FieldMinMax::new(2); // never updated
        q.update(&[1.0, 2.0], &env);
    }
}
