//! One-pass central moments up to order four.
//!
//! Implements the numerically stable single-sample update and pairwise merge
//! formulas of Pébay, *Formulas for robust, one-pass parallel computation of
//! covariances and arbitrary-order statistical moments* (SAND2008-6212) —
//! reference \[34\] of the Melissa paper.  The order-2 special case is the
//! classical Welford (1962) recurrence.

/// One-pass accumulator for mean and the 2nd–4th central moments.
///
/// Internally stores the sample count `n`, the running mean, and the
/// unnormalised central moment sums `M2 = Σ(x−μ)²`, `M3 = Σ(x−μ)³`,
/// `M4 = Σ(x−μ)⁴`.  Updating with a sample is `O(1)`; merging two
/// accumulators is `O(1)`, enabling parallel reduction trees.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs an accumulator from raw state (used by checkpoint
    /// restore).  The caller is responsible for providing values produced by
    /// [`raw_state`](Self::raw_state).
    #[inline]
    pub fn from_raw_state(n: u64, mean: f64, m2: f64, m3: f64, m4: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            m3,
            m4,
        }
    }

    /// Returns the raw state `(n, mean, M2, M3, M4)` (used by checkpointing).
    #[inline]
    pub fn raw_state(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.m3, self.m4)
    }

    /// Folds one sample into the accumulator (Welford/Pébay update).
    #[inline]
    pub fn update(&mut self, x: f64) {
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * (n - 1.0);
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merges another accumulator into this one (Pébay pairwise formulas).
    ///
    /// After the call, `self` is exactly the accumulator that would have been
    /// obtained by feeding both sample streams into a single accumulator
    /// (up to floating-point rounding).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
    }

    /// Number of samples folded in so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean; `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance `M2 / (n − 1)`; `0.0` when `n < 2`.
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Population (biased) variance `M2 / n`; `0.0` when empty.
    #[inline]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Skewness `√n · M3 / M2^{3/2}`; `0.0` when undefined.
    pub fn skewness(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            0.0
        } else {
            (self.n as f64).sqrt() * self.m3 / self.m2.powf(1.5)
        }
    }

    /// Excess kurtosis `n · M4 / M2² − 3`; `0.0` when undefined.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n < 2 || self.m2 <= 0.0 {
            0.0
        } else {
            self.n as f64 * self.m4 / (self.m2 * self.m2) - 3.0
        }
    }

    /// Unnormalised second central moment `Σ(x−μ)²`.
    #[inline]
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Unnormalised third central moment `Σ(x−μ)³`.
    #[inline]
    pub fn m3(&self) -> f64 {
        self.m3
    }

    /// Unnormalised fourth central moment `Σ(x−μ)⁴`.
    #[inline]
    pub fn m4(&self) -> f64 {
        self.m4
    }
}

impl std::iter::FromIterator<f64> for OnlineMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for x in iter {
            acc.update(x);
        }
        acc
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.update(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} != {b} (tol {tol})"
        );
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = OnlineMoments::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
        assert_eq!(acc.skewness(), 0.0);
        assert_eq!(acc.excess_kurtosis(), 0.0);
    }

    #[test]
    fn single_sample() {
        let acc: OnlineMoments = [42.0].into_iter().collect();
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.mean(), 42.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_on_known_data() {
        let data: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 101) as f64 * 0.71 - 13.0)
            .collect();
        let acc: OnlineMoments = data.iter().copied().collect();
        assert_close(acc.mean(), batch::mean(&data), 1e-12);
        assert_close(acc.sample_variance(), batch::sample_variance(&data), 1e-12);
        assert_close(acc.skewness(), batch::skewness(&data), 1e-10);
        assert_close(acc.excess_kurtosis(), batch::excess_kurtosis(&data), 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        for split in [0usize, 1, 7, 250, 499, 500] {
            let mut a: OnlineMoments = data[..split].iter().copied().collect();
            let b: OnlineMoments = data[split..].iter().copied().collect();
            a.merge(&b);
            let seq: OnlineMoments = data.iter().copied().collect();
            assert_eq!(a.count(), seq.count());
            assert_close(a.mean(), seq.mean(), 1e-12);
            assert_close(a.m2(), seq.m2(), 1e-10);
            assert_close(a.m3(), seq.m3(), 1e-9);
            assert_close(a.m4(), seq.m4(), 1e-9);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineMoments = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a, before);

        let mut e = OnlineMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn constant_samples_have_zero_variance() {
        let acc: OnlineMoments = std::iter::repeat_n(5.5, 100).collect();
        assert_close(acc.mean(), 5.5, 1e-15);
        assert!(acc.sample_variance().abs() < 1e-20);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Catastrophic cancellation killer: tiny variance on a huge offset.
        let data: Vec<f64> = (0..10_000).map(|i| 1e9 + (i % 7) as f64 * 0.001).collect();
        let acc: OnlineMoments = data.iter().copied().collect();
        let exact = batch::sample_variance(&data);
        assert_close(acc.sample_variance(), exact, 1e-6);
        assert!(acc.sample_variance() > 0.0);
    }

    #[test]
    fn raw_state_roundtrip() {
        let acc: OnlineMoments = (0..17).map(|i| i as f64 * 1.3).collect();
        let (n, mean, m2, m3, m4) = acc.raw_state();
        let back = OnlineMoments::from_raw_state(n, mean, m2, m3, m4);
        assert_eq!(acc, back);
    }

    #[test]
    fn skewness_sign_follows_distribution() {
        // Right-skewed data: exponential-ish.
        let right: OnlineMoments = (1..2000).map(|i| (i as f64 / 100.0).exp() % 50.0).collect();
        let sym: OnlineMoments = (-1000..=1000).map(|i| i as f64).collect();
        assert!(sym.skewness().abs() < 1e-10);
        assert!(right.skewness().abs() > 0.01);
    }
}
