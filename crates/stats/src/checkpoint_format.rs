//! The checkpoint wire format (v2/v3): field tables for the byte layout
//! every statistics family round-trips through.
//!
//! This is a **documentation-only** module.  The codec itself lives in
//! the `melissa` core crate (`melissa::server::checkpoint::pack_state` /
//! `unpack_state`, plus the `write_checkpoint` / `read_checkpoint` file
//! wrappers), but the payload of every section is the `raw_state()` of
//! an accumulator defined *here* in `melissa-stats` (or in
//! `melissa-sobol` for the Sobol' tiles).  The tables below make that
//! contract auditable in one place — in particular for the sharded-study
//! **reduction tree**, which reuses the same pack/unpack codec to drain
//! shard worker states exactly as a remote shard would ship them over
//! the wire.
//!
//! ## Conventions
//!
//! * **Endianness** — every integer and float is **little-endian**
//!   (`put_u32_le`/`put_u64_le`/`put_f64_le` of the
//!   `melissa_transport::codec` / `bytes` helpers).  There is no
//!   alignment or padding: fields are packed back to back.
//! * **Lengths before payloads** — every variable-length array is
//!   preceded by its element count as a `u64`, so a reader can validate
//!   section sizes before allocating.
//! * **Determinism rule (sorted bookkeeping)** — the serialized bytes
//!   are a *pure function of the logical state*.  Wherever the in-memory
//!   representation has nondeterministic order (the `last_completed`
//!   hash map, whose iteration order is salted per process), the writer
//!   sorts by key before emitting.  This is what makes
//!   `pack ∘ unpack ∘ pack` bit-stable, lets tests compare checkpoint
//!   bytes across runs, and guarantees the reduction tree's drain step
//!   adds no noise.
//!
//! ## File header
//!
//! | field | type | value / meaning |
//! |---|---|---|
//! | magic | `u32` | `0x4d4c5341` (`"MLSA"`) |
//! | version | `u32` | `3` (current); `2` still readable |
//! | worker_id | `u64` | owning worker; must match the file name |
//! | slab.start | `u64` | first global cell of the worker's slab |
//! | slab.len | `u64` | cells in the slab (all per-cell arrays use this length) |
//! | p | `u32` | number of variable parameters |
//! | n_timesteps | `u32` | per-timestep sections repeat this many times |
//!
//! ## Section 1 — Sobol' state (× `n_timesteps`)
//!
//! One record per timestep, packing the tiled
//! `melissa_sobol::UbiquitousSobol` into its stable role-major layout
//! (`pack_into`; the cache-blocked tile layout is an in-memory detail,
//! never serialized):
//!
//! | field | type | meaning |
//! |---|---|---|
//! | n_groups | `u64` | groups folded into this timestep |
//! | flat_len | `u64` | must equal `(4 + 4p) · slab.len` |
//! | flat | `f64 × flat_len` | per-cell accumulators, role-major |
//!
//! ## Section 2 — field moments (× `n_timesteps`)
//!
//! [`FieldMoments::raw_state`](crate::FieldMoments::raw_state) =
//! `(n, mean, M2, M3, M4)`:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | n | `u64` | samples per cell (shared count) |
//! | len | `u64` | must equal `slab.len` |
//! | mean, M2, M3, M4 | `f64 × len` each | Pébay central-moment sums, four arrays back to back |
//!
//! ## Section 3 — min/max envelope (× `n_timesteps`)
//!
//! [`FieldMinMax::raw_state`](crate::FieldMinMax::raw_state) =
//! `(n, min, max)`:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | n | `u64` | samples per cell |
//! | len | `u64` | must equal `slab.len` |
//! | min, max | `f64 × len` each | per-cell envelope |
//!
//! ## Section 4 — threshold exceedance
//!
//! A `u64` threshold count `T`, then **threshold-major** (all timesteps
//! of threshold 0, then threshold 1, …), each record being
//! [`FieldThreshold::raw_state`](crate::FieldThreshold::raw_state):
//!
//! | field | type | meaning |
//! |---|---|---|
//! | threshold | `f64` | the exceedance level |
//! | n | `u64` | samples per cell |
//! | len | `u64` | must equal `slab.len` |
//! | exceeded | `u64 × len` | per-cell exceedance counters (exact integers) |
//!
//! ## Section 5 — Robbins–Monro quantiles (v3+ only)
//!
//! Absent in v2 files: a v2 checkpoint restores with quantiles **cold**
//! (Robbins–Monro iterates carry no sufficient statistic that could be
//! rebuilt from the other accumulators).  In v3 the section starts with
//! the probability count `m` as a `u64`; when `m = 0` (order statistics
//! disabled) nothing else follows.  Otherwise:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | gamma | `f64` | step exponent γ ∈ (0.5, 1], shared across timesteps |
//! | probs | `f64 × m` | target probabilities, in tracked order |
//! | per timestep: n | `u64` | samples folded in |
//! | per timestep: flat_len | `u64` | must equal `m · slab.len` |
//! | per timestep: records | `f64 × flat_len` | the [`FieldQuantiles`](crate::FieldQuantiles) cell-contiguous records verbatim |
//!
//! ## Section 6 — bookkeeping
//!
//! | field | type | meaning |
//! |---|---|---|
//! | n_groups | `u64` | entries in the last-completed map |
//! | (group, ts) | `(u64, i64) × n_groups` | **sorted by group id** (the determinism rule) |
//! | n_finished | `u64` | fully integrated groups |
//! | finished | `u64 × n_finished` | in completion order |
//!
//! In-flight assemblies are deliberately **not** serialized: on restore
//! their groups replay from the beginning and discard-on-replay drops
//! everything at or below the per-group `last_completed` floor — which is
//! also why the reduction tree's drain through this codec is safe: at
//! study end, pending assemblies belong only to abandoned groups whose
//! partial data was never integrated anywhere.
//!
//! ## Version history
//!
//! * **v3** (current) — adds Section 5.  Re-writing a restored v3 state
//!   reproduces the file bit for bit.
//! * **v2** (read-only) — Sections 1–4 and 6 exactly as above.  The core
//!   crate keeps a pinned legacy v2 writer in its tests so a format
//!   regression cannot silently rewrite history.
