//! Cache-blocked tile infrastructure for ubiquitous-statistics state.
//!
//! The server's hot path updates one accumulator record per mesh cell per
//! incoming group.  A role-major structure-of-arrays spreads each cell's
//! record over dozens of megabyte-scale arrays, so a single cell update
//! touches that many distinct cache lines and the hardware prefetchers run
//! out of streams.  The cure is the classic cache-blocking move: store one
//! packed record per cell, cells consecutive, in 64-byte-aligned storage,
//! and sweep the state tile by tile where one tile's records fit in L1/L2.
//!
//! This module provides the three building blocks shared by
//! `melissa-stats` and `melissa-sobol`:
//!
//! * [`AlignedVec`] — a fixed-capacity `f64` buffer with 64-byte (cache
//!   line) base alignment;
//! * [`tile_cells`] — the tile size heuristic (records per tile sized to
//!   the L1 budget);
//! * [`DisjointSlices`] — the unsafe-but-sound escape hatch letting one
//!   parallel sweep hand *disjoint* tile ranges of several independent
//!   arrays to worker tasks without per-call task-list allocations.

use std::alloc::{self, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line base alignment for tile storage.
pub const TILE_ALIGN: usize = 64;

/// Per-tile state budget in bytes (≈ half a typical 32 KiB L1d, leaving
/// room for the incoming field stripes).
const TILE_STATE_BYTES: usize = 16 * 1024;

/// Number of cells per tile for records of `stride` doubles, always a
/// power of two in `[32, 1024]`.
///
/// For the paper's `p = 6` (stride `4 + 4p = 28`, 224 B/record) this
/// yields 64 cells — 14 KiB of state per tile.
pub fn tile_cells(stride: usize) -> usize {
    assert!(stride > 0, "record stride must be positive");
    let fit = (TILE_STATE_BYTES / (stride * 8)).max(1);
    // Largest power of two ≤ fit: stay *under* the L1 budget.
    (1usize << (usize::BITS - 1 - fit.leading_zeros())).clamp(32, 1024)
}

/// A heap `f64` buffer with fixed length and 64-byte base alignment.
///
/// `Vec<f64>` only guarantees 8-byte alignment; tile sweeps want records
/// to start on cache-line boundaries so a tile never straddles an extra
/// line and (future) SIMD loads can assume alignment.
pub struct AlignedVec {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec<f64>.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates `len` zeroed doubles.
    pub fn zeroed(len: usize) -> Self {
        assert!(len > 0, "AlignedVec must be non-empty");
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size; alloc_zeroed yields a valid
        // all-zero f64 buffer (0.0 is all-zero bits).
        let raw = unsafe { alloc::alloc_zeroed(layout) };
        let ptr =
            NonNull::new(raw as *mut f64).unwrap_or_else(|| alloc::handle_alloc_error(layout));
        Self { ptr, len }
    }

    /// Allocates a copy of `values`.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut v = Self::zeroed(values.len());
        v.copy_from_slice(values);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * 8, TILE_ALIGN).expect("tile layout")
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
    }
}

impl Deref for AlignedVec {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        // SAFETY: ptr/len describe the owned allocation.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: ptr/len describe the owned allocation, borrowed uniquely.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self)
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len = {})", self.len)
    }
}

/// Shares a mutable slice across parallel tile tasks that each touch a
/// *disjoint* index range.
///
/// Rayon's zip-of-chunks pattern covers a fixed arity of arrays; a fused
/// sweep over Sobol' state + moments + min/max + a runtime-variable list
/// of thresholds does not fit it without building per-tile task lists on
/// every call (the allocation the tentpole removes).  `DisjointSlices`
/// instead erases the borrow for the duration of one sweep; callers
/// uphold disjointness by construction (tile ranges never overlap).
pub struct DisjointSlices<'a, T> {
    ptr: *mut T,
    len: usize,
    _life: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by disjoint ranges (caller contract of
// `range_mut`), so concurrent tasks never alias.
unsafe impl<T: Send> Send for DisjointSlices<'_, T> {}
unsafe impl<T: Send> Sync for DisjointSlices<'_, T> {}

impl<'a, T> DisjointSlices<'a, T> {
    /// Wraps `slice` for the duration of one parallel sweep.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _life: std::marker::PhantomData,
        }
    }

    /// Total length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of `range`.
    ///
    /// # Safety
    /// Concurrent callers must pass pairwise-disjoint ranges, and every
    /// range must lie inside the wrapped slice (checked by assertion).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "tile range out of bounds"
        );
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn aligned_vec_is_cache_line_aligned_and_zeroed() {
        let v = AlignedVec::zeroed(1000);
        assert_eq!(v.as_ptr() as usize % TILE_ALIGN, 0);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn aligned_vec_clone_and_eq() {
        let mut v = AlignedVec::zeroed(37);
        v[3] = 1.5;
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w[3], 1.5);
    }

    #[test]
    fn tile_cells_matches_l1_budget() {
        // p = 6: stride 28 → 64 cells → 14 KiB/tile, comfortably in L1.
        assert_eq!(tile_cells(28), 64);
        // Tiny strides clamp high, huge strides clamp low.
        assert_eq!(tile_cells(1), 1024);
        assert_eq!(tile_cells(4096), 32);
    }

    #[test]
    fn disjoint_slices_parallel_tiles_write_without_overlap() {
        let mut data = vec![0u64; 4096];
        let shared = DisjointSlices::new(&mut data);
        let shared_ref = &shared;
        (0..16usize).into_par_iter().for_each(|t| {
            // SAFETY: tiles [256 t, 256 (t+1)) are pairwise disjoint.
            let tile = unsafe { shared_ref.range_mut(t * 256..(t + 1) * 256) };
            for (i, x) in tile.iter_mut().enumerate() {
                *x = (t * 256 + i) as u64;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn disjoint_slices_bounds_are_checked() {
        let mut data = vec![0u8; 4];
        let s = DisjointSlices::new(&mut data);
        unsafe {
            let _ = s.range_mut(2..9);
        }
    }
}
