//! One-pass covariance of paired samples.
//!
//! The Sobol' index estimators of the Melissa paper (Eqs. 5–7) are ratios of
//! covariances and variances; this module provides the iterative covariance
//! building block (Pébay 2008 co-moment update and merge).

use crate::OnlineMoments;

/// One-pass accumulator for the covariance of a paired sample stream
/// `(x_i, y_i)`.
///
/// Internally stores the sample count, the two running means and the
/// unnormalised co-moment `C2 = Σ(x−μx)(y−μy)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineCovariance {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    c2: f64,
}

impl OnlineCovariance {
    /// Creates an empty accumulator.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs an accumulator from raw state (checkpoint restore).
    #[inline]
    pub fn from_raw_state(n: u64, mean_x: f64, mean_y: f64, c2: f64) -> Self {
        Self {
            n,
            mean_x,
            mean_y,
            c2,
        }
    }

    /// Returns the raw state `(n, mean_x, mean_y, C2)`.
    #[inline]
    pub fn raw_state(&self) -> (u64, f64, f64, f64) {
        (self.n, self.mean_x, self.mean_y, self.c2)
    }

    /// Folds one paired sample into the accumulator.
    #[inline]
    pub fn update(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.mean_y += (y - self.mean_y) / n;
        // Uses the pre-update x-mean delta and the post-update y-mean, which
        // yields the exact single-pass co-moment recurrence.
        self.c2 += dx * (y - self.mean_y);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.c2 += other.c2 + dx * dy * na * nb / n;
        self.mean_x += dx * nb / n;
        self.mean_y += dy * nb / n;
        self.n += other.n;
    }

    /// Number of pairs folded in so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean of the `x` stream.
    #[inline]
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Running mean of the `y` stream.
    #[inline]
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Unbiased sample covariance `C2 / (n − 1)`; `0.0` when `n < 2`.
    #[inline]
    pub fn sample_covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.c2 / (self.n as f64 - 1.0)
        }
    }

    /// Population covariance `C2 / n`; `0.0` when empty.
    #[inline]
    pub fn population_covariance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.c2 / self.n as f64
        }
    }

    /// Unnormalised co-moment `Σ(x−μx)(y−μy)`.
    #[inline]
    pub fn c2(&self) -> f64 {
        self.c2
    }

    /// Pearson correlation given externally tracked marginal accumulators.
    ///
    /// Melissa tracks the marginal moments of each sample vector once and
    /// shares them across several covariance accumulators, so the
    /// correlation is exposed as a free function of the three accumulators.
    pub fn correlation(&self, x_moments: &OnlineMoments, y_moments: &OnlineMoments) -> f64 {
        let vx = x_moments.sample_variance();
        let vy = y_moments.sample_variance();
        if vx <= 0.0 || vy <= 0.0 {
            return 0.0;
        }
        self.sample_covariance() / (vx.sqrt() * vy.sqrt())
    }
}

impl std::iter::FromIterator<(f64, f64)> for OnlineCovariance {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut acc = Self::new();
        for (x, y) in iter {
            acc.update(x, y);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} != {b} (tol {tol})"
        );
    }

    fn paired_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 4.0 + 1.0)
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 2.0 + (i as f64 * 0.11).cos())
            .collect();
        (xs, ys)
    }

    #[test]
    fn empty_and_single_are_safe() {
        let mut acc = OnlineCovariance::new();
        assert_eq!(acc.sample_covariance(), 0.0);
        acc.update(1.0, 2.0);
        assert_eq!(acc.count(), 1);
        assert_eq!(acc.sample_covariance(), 0.0);
        assert_eq!(acc.mean_x(), 1.0);
        assert_eq!(acc.mean_y(), 2.0);
    }

    #[test]
    fn matches_two_pass() {
        let (xs, ys) = paired_data(777);
        let acc: OnlineCovariance = xs.iter().copied().zip(ys.iter().copied()).collect();
        assert_close(
            acc.sample_covariance(),
            batch::sample_covariance(&xs, &ys),
            1e-12,
        );
        assert_close(acc.mean_x(), batch::mean(&xs), 1e-12);
        assert_close(acc.mean_y(), batch::mean(&ys), 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let (xs, ys) = paired_data(300);
        for split in [0usize, 1, 150, 299, 300] {
            let mut a: OnlineCovariance = xs[..split]
                .iter()
                .copied()
                .zip(ys[..split].iter().copied())
                .collect();
            let b: OnlineCovariance = xs[split..]
                .iter()
                .copied()
                .zip(ys[split..].iter().copied())
                .collect();
            a.merge(&b);
            let seq: OnlineCovariance = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(a.count(), seq.count());
            assert_close(a.c2(), seq.c2(), 1e-10);
        }
    }

    #[test]
    fn perfectly_correlated_streams() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 7.0).collect();
        let cov: OnlineCovariance = xs.iter().copied().zip(ys.iter().copied()).collect();
        let mx: OnlineMoments = xs.iter().copied().collect();
        let my: OnlineMoments = ys.iter().copied().collect();
        assert_close(cov.correlation(&mx, &my), 1.0, 1e-12);
    }

    #[test]
    fn anticorrelated_streams() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        let cov: OnlineCovariance = xs.iter().copied().zip(ys.iter().copied()).collect();
        let mx: OnlineMoments = xs.iter().copied().collect();
        let my: OnlineMoments = ys.iter().copied().collect();
        assert_close(cov.correlation(&mx, &my), -1.0, 1e-12);
    }

    #[test]
    fn correlation_of_degenerate_stream_is_zero() {
        let cov: OnlineCovariance = (0..10).map(|i| (1.0, i as f64)).collect();
        let mx: OnlineMoments = std::iter::repeat_n(1.0, 10).collect();
        let my: OnlineMoments = (0..10).map(|i| i as f64).collect();
        assert_eq!(cov.correlation(&mx, &my), 0.0);
    }

    #[test]
    fn raw_state_roundtrip() {
        let acc: OnlineCovariance = (0..13).map(|i| (i as f64, (i * i) as f64)).collect();
        let (n, mx, my, c2) = acc.raw_state();
        assert_eq!(acc, OnlineCovariance::from_raw_state(n, mx, my, c2));
    }
}
