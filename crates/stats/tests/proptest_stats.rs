//! Property-based tests: iterative statistics must agree with their
//! two-pass references for arbitrary inputs, and pairwise merging must be
//! equivalent to sequential accumulation at any split point.

use melissa_stats::quantiles::{sorted_quantile, TrackedQuantiles};
use melissa_stats::{batch, FieldMoments, MinMax, OnlineCovariance, OnlineMoments};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = f64> {
    // Bounded magnitudes: the agreement tolerance below is relative, but
    // wildly mixed magnitudes (1e300 with 1e-300) are not representative of
    // simulation fields and make any floating-point comparison meaningless.
    prop::num::f64::NORMAL.prop_map(|x| x % 1e6)
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn iterative_mean_and_variance_match_two_pass(data in prop::collection::vec(finite_sample(), 2..200)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(acc.mean(), batch::mean(&data), 1e-9));
        prop_assert!(rel_close(acc.sample_variance(), batch::sample_variance(&data), 1e-6));
    }

    #[test]
    fn iterative_higher_moments_match_two_pass(data in prop::collection::vec(-1e3f64..1e3, 3..150)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(acc.skewness(), batch::skewness(&data), 1e-5));
        prop_assert!(rel_close(acc.excess_kurtosis(), batch::excess_kurtosis(&data), 1e-5));
    }

    #[test]
    fn merge_is_equivalent_to_sequential(
        data in prop::collection::vec(finite_sample(), 1..120),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut a: OnlineMoments = data[..split].iter().copied().collect();
        let b: OnlineMoments = data[split..].iter().copied().collect();
        a.merge(&b);
        let seq: OnlineMoments = data.iter().copied().collect();
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!(rel_close(a.mean(), seq.mean(), 1e-9));
        prop_assert!(rel_close(a.m2(), seq.m2(), 1e-6));
    }

    #[test]
    fn merge_is_commutative_in_value(
        xs in prop::collection::vec(finite_sample(), 1..60),
        ys in prop::collection::vec(finite_sample(), 1..60),
    ) {
        let a: OnlineMoments = xs.iter().copied().collect();
        let b: OnlineMoments = ys.iter().copied().collect();
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!(rel_close(ab.mean(), ba.mean(), 1e-9));
        prop_assert!(rel_close(ab.m2(), ba.m2(), 1e-6));
        prop_assert!(rel_close(ab.m3(), ba.m3(), 1e-5));
    }

    #[test]
    fn covariance_matches_two_pass(
        pairs in prop::collection::vec((finite_sample(), finite_sample()), 2..150)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let acc: OnlineCovariance = pairs.iter().copied().collect();
        prop_assert!(rel_close(acc.sample_covariance(), batch::sample_covariance(&xs, &ys), 1e-6));
    }

    #[test]
    fn covariance_merge_matches_sequential(
        pairs in prop::collection::vec((finite_sample(), finite_sample()), 1..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((pairs.len() as f64) * split_frac) as usize;
        let mut a: OnlineCovariance = pairs[..split].iter().copied().collect();
        let b: OnlineCovariance = pairs[split..].iter().copied().collect();
        a.merge(&b);
        let seq: OnlineCovariance = pairs.iter().copied().collect();
        prop_assert!(rel_close(a.c2(), seq.c2(), 1e-6));
    }

    #[test]
    fn covariance_of_stream_with_itself_is_variance(
        data in prop::collection::vec(finite_sample(), 2..100)
    ) {
        let cov: OnlineCovariance = data.iter().map(|&x| (x, x)).collect();
        let mom: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(cov.sample_covariance(), mom.sample_variance(), 1e-9));
    }

    #[test]
    fn minmax_merge_matches_sequential(
        data in prop::collection::vec(finite_sample(), 1..80),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut a = MinMax::new();
        data[..split].iter().for_each(|&x| a.update(x));
        let mut b = MinMax::new();
        data[split..].iter().for_each(|&x| b.update(x));
        a.merge(&b);
        let mut seq = MinMax::new();
        data.iter().for_each(|&x| seq.update(x));
        prop_assert_eq!(a, seq);
    }

    #[test]
    fn field_moments_agree_with_scalar_accumulators(
        samples in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 8), 2..40)
    ) {
        let mut fm = FieldMoments::new(8);
        let mut scalar = vec![OnlineMoments::new(); 8];
        for s in &samples {
            fm.update(s);
            for (acc, &x) in scalar.iter_mut().zip(s) {
                acc.update(x);
            }
        }
        for (c, sc) in scalar.iter().enumerate() {
            let cell = fm.cell(c);
            prop_assert!(rel_close(cell.mean(), sc.mean(), 1e-9));
            prop_assert!(rel_close(cell.sample_variance(), sc.sample_variance(), 1e-7));
        }
    }

    #[test]
    fn variance_is_never_meaningfully_negative(data in prop::collection::vec(finite_sample(), 0..100)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        // One-pass M2 can only go negative through rounding; it must stay
        // negligible relative to the scale of the data.
        let scale: f64 = 1.0 + data.iter().map(|x| x * x).sum::<f64>();
        prop_assert!(acc.m2() >= -1e-9 * scale);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Robbins–Monro quantile estimates must land close to the exact
    /// sorted-sample quantiles for arbitrary bounded inputs.  Accuracy is
    /// judged the way the follow-up paper (arXiv:1905.04180) evaluates
    /// its estimates — as a fraction of the observed data range — OR in
    /// rank space (|F̂(q̂) − α|), whichever is smaller: rank error is the
    /// meaningful criterion where the density is flat (plateaus of
    /// duplicated values), value error where it is degenerate (atoms).
    #[test]
    fn rm_quantiles_approach_sorted_sample_quantiles(
        data in prop::collection::vec(-100.0f64..100.0, 400..800),
    ) {
        use melissa_stats::quantiles::PAPER_PROBS;
        let mut acc = TrackedQuantiles::new(1, &PAPER_PROBS);
        for &y in &data {
            acc.update(&[y]);
        }
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let range = sorted[sorted.len() - 1] - sorted[0];
        for (j, &alpha) in PAPER_PROBS.iter().enumerate() {
            let est = acc.quant.quantile_at(0, j);
            let exact = sorted_quantile(&sorted, alpha);
            let value_err = if range > 0.0 {
                (est - exact).abs() / range
            } else {
                (est - exact).abs()
            };
            let rank = sorted.iter().filter(|&&y| y <= est).count() as f64 / n;
            let rank_err = (rank - alpha).abs();
            prop_assert!(
                value_err <= 0.15 || rank_err <= 0.15,
                "alpha {}: est {} vs exact {} (value err {:.3} of range, rank err {:.3})",
                alpha, est, exact, value_err, rank_err
            );
        }
    }

    /// Merging quantile accumulators must be associative (up to FP
    /// rounding): a reduction tree may combine partial states in any
    /// shape without changing the result.
    #[test]
    fn quantile_merge_is_associative(
        xs in prop::collection::vec(-50.0f64..50.0, 1..80),
        ys in prop::collection::vec(-50.0f64..50.0, 1..80),
        zs in prop::collection::vec(-50.0f64..50.0, 1..80),
    ) {
        let probs = [0.1, 0.5, 0.9];
        let cells = 2;
        let build = |vals: &[f64]| {
            let mut acc = TrackedQuantiles::new(cells, &probs);
            for &y in vals {
                // Distinct per-cell streams (second cell offset + scaled).
                acc.update(&[y, 2.0 * y + 1.0]);
            }
            acc.quant
        };
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert_eq!(left.count(), right.count());
        // Counts are exact; the weighted-mean estimates agree to rounding.
        for cell in 0..cells {
            for j in 0..probs.len() {
                prop_assert!(
                    rel_close(left.quantile_at(cell, j), right.quantile_at(cell, j), 1e-12),
                    "cell {} prob {}: {} vs {}",
                    cell, j, left.quantile_at(cell, j), right.quantile_at(cell, j)
                );
            }
        }
    }

    /// Merging a partition of one stream approximates the sequential
    /// estimate: the combined estimate stays within the data range and
    /// keeps the exact combined envelope/count.
    #[test]
    fn quantile_merge_of_split_stays_in_range(
        data in prop::collection::vec(-100.0f64..100.0, 2..200),
        split_frac in 0.0f64..1.0,
    ) {
        let split = (((data.len() - 1) as f64) * split_frac) as usize + 1;
        let probs = [0.5];
        let mut a = TrackedQuantiles::new(1, &probs);
        for &y in &data[..split] {
            a.update(&[y]);
        }
        let mut b = TrackedQuantiles::new(1, &probs);
        for &y in &data[split..] {
            b.update(&[y]);
        }
        a.quant.merge(&b.quant);
        a.env.merge(&b.env);
        prop_assert_eq!(a.quant.count(), data.len() as u64);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(a.env.max()[0] - a.env.min()[0], hi - lo);
        let q = a.quant.quantile_at(0, 0);
        prop_assert!((lo..=hi).contains(&q), "median {} outside [{}, {}]", q, lo, hi);
    }
}
