//! Property-based tests: iterative statistics must agree with their
//! two-pass references for arbitrary inputs, and pairwise merging must be
//! equivalent to sequential accumulation at any split point.

use melissa_stats::{batch, FieldMoments, MinMax, OnlineCovariance, OnlineMoments};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = f64> {
    // Bounded magnitudes: the agreement tolerance below is relative, but
    // wildly mixed magnitudes (1e300 with 1e-300) are not representative of
    // simulation fields and make any floating-point comparison meaningless.
    prop::num::f64::NORMAL.prop_map(|x| x % 1e6)
}

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn iterative_mean_and_variance_match_two_pass(data in prop::collection::vec(finite_sample(), 2..200)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(acc.mean(), batch::mean(&data), 1e-9));
        prop_assert!(rel_close(acc.sample_variance(), batch::sample_variance(&data), 1e-6));
    }

    #[test]
    fn iterative_higher_moments_match_two_pass(data in prop::collection::vec(-1e3f64..1e3, 3..150)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(acc.skewness(), batch::skewness(&data), 1e-5));
        prop_assert!(rel_close(acc.excess_kurtosis(), batch::excess_kurtosis(&data), 1e-5));
    }

    #[test]
    fn merge_is_equivalent_to_sequential(
        data in prop::collection::vec(finite_sample(), 1..120),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut a: OnlineMoments = data[..split].iter().copied().collect();
        let b: OnlineMoments = data[split..].iter().copied().collect();
        a.merge(&b);
        let seq: OnlineMoments = data.iter().copied().collect();
        prop_assert_eq!(a.count(), seq.count());
        prop_assert!(rel_close(a.mean(), seq.mean(), 1e-9));
        prop_assert!(rel_close(a.m2(), seq.m2(), 1e-6));
    }

    #[test]
    fn merge_is_commutative_in_value(
        xs in prop::collection::vec(finite_sample(), 1..60),
        ys in prop::collection::vec(finite_sample(), 1..60),
    ) {
        let a: OnlineMoments = xs.iter().copied().collect();
        let b: OnlineMoments = ys.iter().copied().collect();
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!(rel_close(ab.mean(), ba.mean(), 1e-9));
        prop_assert!(rel_close(ab.m2(), ba.m2(), 1e-6));
        prop_assert!(rel_close(ab.m3(), ba.m3(), 1e-5));
    }

    #[test]
    fn covariance_matches_two_pass(
        pairs in prop::collection::vec((finite_sample(), finite_sample()), 2..150)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let acc: OnlineCovariance = pairs.iter().copied().collect();
        prop_assert!(rel_close(acc.sample_covariance(), batch::sample_covariance(&xs, &ys), 1e-6));
    }

    #[test]
    fn covariance_merge_matches_sequential(
        pairs in prop::collection::vec((finite_sample(), finite_sample()), 1..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((pairs.len() as f64) * split_frac) as usize;
        let mut a: OnlineCovariance = pairs[..split].iter().copied().collect();
        let b: OnlineCovariance = pairs[split..].iter().copied().collect();
        a.merge(&b);
        let seq: OnlineCovariance = pairs.iter().copied().collect();
        prop_assert!(rel_close(a.c2(), seq.c2(), 1e-6));
    }

    #[test]
    fn covariance_of_stream_with_itself_is_variance(
        data in prop::collection::vec(finite_sample(), 2..100)
    ) {
        let cov: OnlineCovariance = data.iter().map(|&x| (x, x)).collect();
        let mom: OnlineMoments = data.iter().copied().collect();
        prop_assert!(rel_close(cov.sample_covariance(), mom.sample_variance(), 1e-9));
    }

    #[test]
    fn minmax_merge_matches_sequential(
        data in prop::collection::vec(finite_sample(), 1..80),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut a = MinMax::new();
        data[..split].iter().for_each(|&x| a.update(x));
        let mut b = MinMax::new();
        data[split..].iter().for_each(|&x| b.update(x));
        a.merge(&b);
        let mut seq = MinMax::new();
        data.iter().for_each(|&x| seq.update(x));
        prop_assert_eq!(a, seq);
    }

    #[test]
    fn field_moments_agree_with_scalar_accumulators(
        samples in prop::collection::vec(prop::collection::vec(-1e4f64..1e4, 8), 2..40)
    ) {
        let mut fm = FieldMoments::new(8);
        let mut scalar = vec![OnlineMoments::new(); 8];
        for s in &samples {
            fm.update(s);
            for (acc, &x) in scalar.iter_mut().zip(s) {
                acc.update(x);
            }
        }
        for (c, sc) in scalar.iter().enumerate() {
            let cell = fm.cell(c);
            prop_assert!(rel_close(cell.mean(), sc.mean(), 1e-9));
            prop_assert!(rel_close(cell.sample_variance(), sc.sample_variance(), 1e-7));
        }
    }

    #[test]
    fn variance_is_never_meaningfully_negative(data in prop::collection::vec(finite_sample(), 0..100)) {
        let acc: OnlineMoments = data.iter().copied().collect();
        // One-pass M2 can only go negative through rounding; it must stay
        // negligible relative to the scale of the data.
        let scale: f64 = 1.0 + data.iter().map(|x| x * x).sum::<f64>();
        prop_assert!(acc.m2() >= -1e-9 * scale);
    }
}
