//! Offline stand-in for [crossbeam](https://crates.io/crates/crossbeam)
//! covering the `channel` subset this workspace uses: bounded MPMC channels
//! with `send`, `try_send`, `send_timeout`, `recv`, `try_recv` and
//! `recv_timeout`, plus the matching error enums.
//!
//! Built on `Mutex` + two `Condvar`s (not-full / not-empty).  Disconnection
//! is tracked by sender/receiver reference counts, matching crossbeam's
//! semantics: sends fail once all receivers are gone, receives drain the
//! queue and then fail once all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` on a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// `recv` on an empty channel with no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking send failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The buffer is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Deadline send failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The buffer stayed full until the deadline.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing buffered right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// Deadline receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Empty and all senders are gone.
        Disconnected,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver")
        }
    }

    /// Creates a bounded channel with capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "capacity must be at least 1");
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().unwrap();
            g.senders -= 1;
            if g.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.shared.inner.lock().unwrap();
            g.receivers -= 1;
            if g.receivers == 0 {
                // Wake senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until buffered or disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                if g.queue.len() < g.cap {
                    g.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                g = self.shared.not_full.wait(g).unwrap();
            }
        }

        /// Buffers without blocking or reports `Full`/`Disconnected`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut g = self.shared.inner.lock().unwrap();
            if g.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if g.queue.len() >= g.cap {
                return Err(TrySendError::Full(value));
            }
            g.queue.push_back(value);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Blocks until buffered, disconnected, or the timeout elapses.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if g.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if g.queue.len() < g.cap {
                    g.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (guard, res) = self.shared.not_full.wait_timeout(g, left).unwrap();
                g = guard;
                if res.timed_out() && g.queue.len() >= g.cap {
                    if g.receivers == 0 {
                        return Err(SendTimeoutError::Disconnected(value));
                    }
                    return Err(SendTimeoutError::Timeout(value));
                }
            }
        }

        /// Frames currently buffered (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// True when nothing is buffered (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.not_empty.wait(g).unwrap();
            }
        }

        /// Pops without blocking or reports `Empty`/`Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.shared.inner.lock().unwrap();
            if let Some(v) = g.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if g.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks until a value arrives, disconnect, or the timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.not_empty.wait_timeout(g, left).unwrap();
                g = guard;
                if res.timed_out() && g.queue.is_empty() {
                    if g.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Frames currently buffered (racy snapshot).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// True when nothing is buffered (racy snapshot).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_blocks_at_capacity_and_drains() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            let t = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                let v = rx.recv().unwrap();
                (v, rx) // keep the receiver alive until after the send
            });
            tx.send(3).unwrap(); // unblocks once the receiver drains
            let (v, rx) = t.join().unwrap();
            assert_eq!(v, 1);
            drop(rx);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn disconnects_propagate_both_ways() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.send(1), Err(SendError(1))));
            let (tx2, rx2) = bounded::<u32>(1);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx2.recv(), Ok(9)); // queued values drain first
            assert_eq!(rx2.recv(), Err(RecvError));
        }
    }
}
