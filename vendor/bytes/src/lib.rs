//! Offline stand-in for [bytes](https://crates.io/crates/bytes) covering the
//! subset this workspace uses: [`Bytes`] (cheaply cloneable shared frames),
//! [`BytesMut`] (append-only encode buffer) and the little-endian [`Buf`] /
//! [`BufMut`] cursor traits.
//!
//! [`Bytes`] is an `Arc<[u8]>` plus an offset window, so `clone` and
//! [`Bytes::slice`] are O(1) and zero-copy — the property the transport
//! layer and the lean `Data` decode path rely on.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (shared storage + window).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (no allocation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-window sharing the same storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The visible window as a slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer for encoding; freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Little-endian read cursor (the subset of `bytes::Buf` used here).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread window.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// True when anything is left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies exactly `dst.len()` bytes out.
    ///
    /// # Panics
    /// Panics when not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Little-endian write cursor (the subset of `bytes::BufMut` used here).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(1);
        b.put_u16_le(2);
        b.put_u32_le(3);
        b.put_u64_le(4);
        b.put_i64_le(-5);
        b.put_f64_le(6.5);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.get_u16_le(), 2);
        assert_eq!(r.get_u32_le(), 3);
        assert_eq!(r.get_u64_le(), 4);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 6.5);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn buf_for_u8_slice_advances() {
        let data = [1u8, 0, 0, 0, 0, 0, 0, 0, 9];
        let mut buf = &data[..];
        assert_eq!(buf.get_u64_le(), 1);
        assert_eq!(buf.remaining(), 1);
        assert_eq!(buf.get_u8(), 9);
    }
}
