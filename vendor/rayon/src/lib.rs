//! Offline stand-in for [rayon](https://crates.io/crates/rayon) covering the
//! subset of the API this workspace uses: `par_chunks`, `par_chunks_mut`,
//! `par_iter`, `par_iter_mut`, range `into_par_iter`, `zip`, `enumerate`,
//! `with_min_len` and `for_each`/`map`+`sum`/`reduce`-free terminal loops.
//!
//! The execution model is deliberately simple: a terminal `for_each`
//! materialises the item list (items are slices or references — cheap),
//! splits it into one contiguous span per worker and runs the spans on
//! `std::thread::scope` threads.  This preserves rayon's two load-bearing
//! properties for this codebase — disjoint mutable chunks run truly in
//! parallel, and the item→index mapping is deterministic — without the
//! work-stealing machinery.  Swapping the real rayon back in is a
//! one-line `Cargo.toml` change; no call sites need to move.

use std::num::NonZeroUsize;

/// Number of worker threads (`RAYON_NUM_THREADS` override, else the
/// available parallelism, else 1).
pub fn current_num_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Runs `items` on scoped worker threads, one contiguous span each.
fn run_spans<T: Send, F: Fn(T) + Sync>(items: Vec<T>, min_len: usize, f: F) {
    let threads = current_num_threads().min(items.len().max(1));
    // Below the parallelism floor (or with one worker) run inline: thread
    // spawn costs dwarf the arithmetic for tiny sweeps.
    if threads <= 1 || items.len() <= 1 || items.len() < min_len {
        for it in items {
            f(it);
        }
        return;
    }
    let span = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = items;
        while !rest.is_empty() {
            let take = span.min(rest.len());
            let chunk: Vec<T> = rest.drain(..take).collect();
            scope.spawn(move || {
                for it in chunk {
                    f(it);
                }
            });
        }
    });
}

/// A finite, indexed parallel iterator (eager item list).
pub struct ParIter<T> {
    items: Vec<T>,
    /// Advisory sequential-fallback floor (see [`run_spans`]).
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    fn new(items: Vec<T>) -> Self {
        Self { items, min_len: 0 }
    }

    /// Pairs this iterator with another, item by item (lengths must match
    /// for the zipped prefix; the shorter side truncates, as in rayon).
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
            min_len: self.min_len,
        }
    }

    /// Attaches the item index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Sets the minimum number of items below which the sweep runs inline.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min;
        self
    }

    /// Consumes the iterator, applying `f` to every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run_spans(self.items, self.min_len, f);
    }

    /// Parallel fold-to-scalar via per-item mapping and a sequential
    /// associative reduce of the (cheap) mapped values.
    pub fn map<U, F>(self, f: F) -> MappedParIter<T, U, F>
    where
        F: Fn(T) -> U + Sync,
        U: Send,
    {
        MappedParIter { inner: self, f }
    }
}

/// Result of [`ParIter::map`]; supports the reducing terminals used here.
pub struct MappedParIter<T, U, F: Fn(T) -> U> {
    inner: ParIter<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> MappedParIter<T, U, F> {
    /// Evaluates the mapping in parallel, preserving item order.
    fn eval(self) -> Vec<U> {
        let f = &self.f;
        let mut slots: Vec<Option<U>> = Vec::with_capacity(self.inner.items.len());
        slots.resize_with(self.inner.items.len(), || None);
        let slot_refs: Vec<(usize, T)> = self.inner.items.into_iter().enumerate().collect();
        let cell = SlotWriter(std::cell::UnsafeCell::new(&mut slots));
        let cell_ref = &cell;
        run_spans(slot_refs, self.inner.min_len, move |(i, item)| {
            // SAFETY: each index is written by exactly one task.
            unsafe { (&mut (*cell_ref.0.get()))[i] = Some(f(item)) };
        });
        slots.into_iter().map(|s| s.expect("task ran")).collect()
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        self.eval().into_iter().sum()
    }

    /// Collects the mapped values in item order (rayon's
    /// `collect::<Vec<_>>()`; any `FromIterator` target works here since
    /// the parallel evaluation is already materialised).
    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.eval().into_iter().collect()
    }

    /// Reduces the mapped values with `identity`/`op`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
    where
        ID: Fn() -> U,
        OP: Fn(U, U) -> U + Sync,
    {
        let f = &self.f;
        let mut acc = identity();
        for item in self.inner.items {
            acc = op(acc, f(item));
        }
        acc
    }
}

/// Shared mutable result-slot table for [`MappedParIter::sum`].
struct SlotWriter<'a, U>(std::cell::UnsafeCell<&'a mut Vec<Option<U>>>);
// SAFETY: distinct tasks write distinct indices (enumerate is bijective).
unsafe impl<U> Sync for SlotWriter<'_, U> {}

/// `slice.par_chunks(n)` / `slice.par_chunks_mut(n)`.
pub trait ParallelSlice<T: Sync> {
    /// Immutable parallel chunks of at most `n` items.
    fn par_chunks(&self, n: usize) -> ParIter<&[T]>;
    /// Immutable parallel iterator over items.
    fn par_iter(&self) -> ParIter<&T>;
}

/// Mutable counterpart of [`ParallelSlice`].
pub trait ParallelSliceMut<T: Send> {
    /// Mutable parallel chunks of at most `n` items.
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]>;
    /// Mutable parallel iterator over items.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, n: usize) -> ParIter<&[T]> {
        assert!(n > 0, "chunk size must be positive");
        ParIter::new(self.chunks(n).collect())
    }

    fn par_iter(&self) -> ParIter<&T> {
        ParIter::new(self.iter().collect())
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]> {
        assert!(n > 0, "chunk size must be positive");
        ParIter::new(self.chunks_mut(n).collect())
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter::new(self.iter_mut().collect())
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_chunks(&self, n: usize) -> ParIter<&[T]> {
        self.as_slice().par_chunks(n)
    }

    fn par_iter(&self) -> ParIter<&T> {
        self.as_slice().par_iter()
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn par_chunks_mut(&mut self, n: usize) -> ParIter<&mut [T]> {
        self.as_mut_slice().par_chunks_mut(n)
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Parallel iterator type.
    type Iter;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Allocation-free parallel iterator over an index range: spans are
/// computed arithmetically, so hot kernels driving tile sweeps through
/// `(0..n_tiles).into_par_iter().for_each(...)` never touch the heap.
pub struct ParRange {
    start: usize,
    end: usize,
    min_len: usize,
}

impl ParRange {
    /// Sets the minimum number of indices below which the sweep runs inline.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min;
        self
    }

    /// Applies `f` to every index, splitting the range across workers.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let len = self.end.saturating_sub(self.start);
        let threads = current_num_threads().min(len.max(1));
        if threads <= 1 || len <= 1 || len < self.min_len {
            for i in self.start..self.end {
                f(i);
            }
            return;
        }
        let span = len.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            let mut lo = self.start;
            while lo < self.end {
                let hi = (lo + span).min(self.end);
                scope.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
                lo = hi;
            }
        });
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
            min_len: 0,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter::new(self)
    }
}

/// The drop-in prelude matching `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParRange, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_zip_writes_disjointly() {
        let mut a = vec![0u64; 10_000];
        let b: Vec<u64> = (0..10_000).collect();
        a.par_chunks_mut(256)
            .zip(b.par_chunks(256))
            .for_each(|(xs, ys)| {
                for (x, y) in xs.iter_mut().zip(ys) {
                    *x = y * 2;
                }
            });
        assert!(a.iter().enumerate().all(|(i, &v)| v == (i as u64) * 2));
    }

    #[test]
    fn enumerate_indices_match_chunk_order() {
        let mut a = vec![0usize; 1000];
        a.par_chunks_mut(100).enumerate().for_each(|(c, xs)| {
            for x in xs.iter_mut() {
                *x = c;
            }
        });
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(v, i / 100);
        }
    }

    #[test]
    fn range_into_par_iter_covers_all_indices() {
        let hits: Vec<std::sync::atomic::AtomicU32> = (0..500)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        (0..500usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(hits
            .iter()
            .all(|h| h.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_sum_reduces_all_items() {
        let v: Vec<u64> = (0..1000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 499_500);
    }
}
