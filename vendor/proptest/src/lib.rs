//! Offline stand-in for [proptest](https://crates.io/crates/proptest)
//! covering the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`ProptestConfig::with_cases`],
//! range / tuple / `prop::collection::vec` / `prop::num::f64::NORMAL`
//! strategies and [`Strategy::prop_map`].
//!
//! Unlike upstream there is **no shrinking**: a failing case reports its
//! deterministic seed and generated inputs via the panic message instead.
//! Case generation is a pure function of (test name, case index), so
//! failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!`-style macros inside a case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Number-of-cases (and, upstream, much more) configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.gen::<u64>() % span) as $ty
            }
        }
    )*};
}

int_range_strategy!(u64, u32, u16, u8, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut StdRng) -> $ty {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty integer range strategy");
                (self.start as i128 + (rng.gen::<u64>() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

signed_range_strategy!(i64, i32, i16, i8, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Sub-modules mirroring the upstream `prop::` namespace.
pub mod strategies {
    use super::*;

    /// Numeric strategies.
    pub mod num {
        /// `f64` strategies.
        pub mod f64 {
            use super::super::*;

            /// All *normal* (finite, non-zero, non-subnormal) `f64`s of
            /// either sign, over the full exponent range.
            #[derive(Debug, Clone, Copy)]
            pub struct Normal;

            /// Upstream-compatible name.
            pub const NORMAL: Normal = Normal;

            impl Strategy for Normal {
                type Value = f64;

                fn generate(&self, rng: &mut StdRng) -> f64 {
                    loop {
                        let v = f64::from_bits(rng.gen::<u64>());
                        if v.is_normal() {
                            return v;
                        }
                    }
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Inclusive-exclusive element-count range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a random length in range.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.gen::<u64>() % span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Deterministic per-(test, case) generator.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

/// Everything the call sites import.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // The negation is structural (any caller condition lands here,
        // including float comparisons), so the partial-ord lint is noise.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "{:?} != {:?}: {}",
                a,
                b,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = { $cfg:expr }; ) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest '{}' case {}/{} failed: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = { $cfg }; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..7.0, n in 1u64..9, v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|y| (0.0..1.0).contains(y)));
        }

        #[test]
        fn normal_floats_are_normal(x in prop::num::f64::NORMAL.prop_map(|x| x % 1e6)) {
            prop_assert!(x.is_finite());
            prop_assert!(x.abs() < 1e6);
        }

        #[test]
        fn tuples_and_eq(pair in (0.0f64..1.0, 0.0f64..1.0)) {
            let (a, b) = pair;
            prop_assert_eq!(a.min(b), b.min(a));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let s = 0.0f64..1.0;
        let a = s.generate(&mut crate::case_rng("t", 3));
        let b = s.generate(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
    }
}
