//! Offline stand-in for [rand](https://crates.io/crates/rand) covering the
//! subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen`] for the primitive
//! `Standard`-distribution types.
//!
//! The generator is xoshiro256**, seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every use in this
//! workspace only requires determinism-in-seed and reasonable equidistribution,
//! both of which xoshiro256** provides.

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Random-number source with the `gen` convenience of upstream `rand`.
pub trait Rng {
    /// The raw 64-bit output stream.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    fn gen_range(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range requires low < high");
        range.start + (range.end - range.start) * self.gen::<f64>()
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unsized_rng_refs_are_usable() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng).is_finite());
    }
}
