//! Offline stand-in for [criterion](https://crates.io/crates/criterion)
//! covering the subset this workspace uses: `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology: per benchmark, a short calibration run sizes the iteration
//! batch, then `sample_size` batches are timed and the **median**
//! nanoseconds-per-iteration is reported (median is robust to scheduler
//! noise, which matters in shared CI containers).  Results print as a
//! table and, when `CRITERION_JSON_OUT` is set, are appended as one JSON
//! object per benchmark to that file — the hook the repo's
//! `BENCH_kernels.json` baseline workflow uses.
//!
//! Environment knobs: `CRITERION_MEASURE_MS` (per-sample budget, default
//! 60), `CRITERION_JSON_OUT` (JSON-lines output path).

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Payload bytes per iteration.
    Bytes(u64),
}

/// Hierarchical benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates a parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full path `group/function/param`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Derived elements-or-bytes per second, if a throughput was declared.
    pub fn per_second(&self) -> Option<f64> {
        self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units / (self.ns_per_iter * 1e-9)
        })
    }

    fn to_json(&self) -> String {
        let (kind, units) = match self.throughput {
            Some(Throughput::Elements(n)) => ("elements", n),
            Some(Throughput::Bytes(n)) => ("bytes", n),
            None => ("none", 0),
        };
        format!(
            "{{\"id\":\"{}\",\"ns_per_iter\":{:.3},\"throughput_kind\":\"{}\",\"units_per_iter\":{},\"units_per_sec\":{:.3}}}",
            self.id,
            self.ns_per_iter,
            kind,
            units,
            self.per_second().unwrap_or(0.0)
        )
    }
}

/// Drives one benchmark's timed iterations.
pub struct Bencher {
    sample_size: usize,
    measure: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` and records the median ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: how many iterations fit in one sample budget?
        let t0 = Instant::now();
        let mut calib_iters: u64 = 0;
        while t0.elapsed() < Duration::from_millis(5) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / calib_iters as f64;
        let batch = ((self.measure.as_nanos() as f64 / per_iter) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(s.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measure: self.criterion.measure,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        self.criterion.record(BenchResult {
            id: full,
            ns_per_iter: b.ns_per_iter,
            throughput: self.throughput,
        });
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happens per-benchmark; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(60);
        Self {
            results: Vec::new(),
            measure: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 7,
        }
    }

    fn record(&mut self, r: BenchResult) {
        let per_sec = match (r.throughput, r.per_second()) {
            (Some(Throughput::Elements(_)), Some(s)) => format!("  {:>12.3} Melem/s", s / 1e6),
            (Some(Throughput::Bytes(_)), Some(s)) => {
                format!("  {:>12.3} MiB/s", s / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("{:<56} {:>14.1} ns/iter{per_sec}", r.id, r.ns_per_iter);
        self.results.push(r);
    }

    /// All recorded results.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes JSON-lines results if `CRITERION_JSON_OUT` is set.
    pub fn finalize(&self) {
        if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {path}: {e}"));
            for r in &self.results {
                writeln!(f, "{}", r.to_json()).expect("write bench json");
            }
        }
    }
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main`, running all listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        std::env::remove_var("CRITERION_JSON_OUT");
        let mut c = Criterion {
            results: Vec::new(),
            measure: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10)).sample_size(3);
        g.bench_function("noop_loop", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..100u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].ns_per_iter > 0.0);
        assert!(c.results()[0].per_second().unwrap() > 0.0);
    }
}
