//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot)
//! covering the subset this workspace uses: poison-free [`Mutex`] and
//! [`RwLock`] whose `lock`/`read`/`write` return the guard directly, and
//! a [`Condvar`] with `wait`/`wait_for`/`notify_*` taking the guard by
//! `&mut`.
//!
//! Implemented over `std::sync`; poisoning is swallowed (`parking_lot`
//! has no poisoning), which matches how the workspace treats panicking
//! lock holders — the guarded state is plain bookkeeping that stays
//! consistent statement-to-statement.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Poison-free mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock (ignores poisoning, as upstream does by design).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Shared read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T>(sync::RwLockReadGuard<'a, T>);

/// Exclusive write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read lock (ignores poisoning, as upstream does).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires the exclusive write lock (ignores poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Runs `f` on the inner std guard in place (needed because std's wait
/// consumes the guard while parking_lot's takes `&mut`).
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY: we read the inner guard out and always write a valid guard
    // back before returning; a panic in `f` aborts via unwrap-on-poison
    // semantics upstream of this call.
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let new = f(inner);
        std::ptr::write(&mut guard.0, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_read_write_guards() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 4;
        assert_eq!(*l.read(), 5);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notifies_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
