//! Workspace-level integration tests: the full public API surface, from
//! the umbrella crate, exactly as a downstream user would consume it.

use melissa_repro::melissa::{Study, StudyConfig};
use melissa_repro::mesh::SliceView;
use melissa_repro::sobol::design::PickFreeze;
use melissa_repro::sobol::testfn::{Ishigami, TestFunction};
use melissa_repro::sobol::IterativeSobol;

/// The complete data path: live study → ubiquitous fields → slices.
#[test]
fn study_to_slice_pipeline() {
    let mut config = StudyConfig::tiny();
    config.n_groups = 4;
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-it");
    let mesh = config.solver.mesh();
    let ts = config.solver.n_timesteps - 1;

    let output = Study::new(config).run().expect("study failed");
    assert_eq!(output.report.groups_finished, 4);
    assert!(
        output.report.data_messages > 0,
        "messages must have flowed in transit"
    );
    assert!(
        output.report.data_bytes > 0,
        "data must have flowed in transit"
    );

    // Fields assemble and slice.
    for k in 0..6 {
        let field = output.results.first_order_field(ts, k);
        let slice = SliceView::mid_plane(&mesh, &field);
        assert_eq!(slice.nx() * slice.ny(), mesh.dims().0 * mesh.dims().1);
        // Martinez indices are correlations: bounded.
        for v in slice.values() {
            assert!((-1.0..=1.0).contains(v), "S out of bounds: {v}");
        }
    }
    let var = output.results.variance_field(ts);
    assert!(var.iter().all(|v| *v >= 0.0));
    assert!(
        var.iter().any(|v| *v > 0.0),
        "some cells must vary across the ensemble"
    );
}

/// The data volume accounting matches the design: every simulation sends
/// its whole field every timestep.
#[test]
fn in_transit_volume_matches_design() {
    let mut config = StudyConfig::tiny();
    config.n_groups = 2;
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-vol");
    let field_bytes = config.solver.field_bytes();
    let expected = field_bytes
        * config.solver.n_timesteps as u64
        * config.group_size() as u64
        * config.n_groups as u64;

    let output = Study::new(config).run().expect("study failed");
    assert_eq!(
        output.report.data_bytes, expected,
        "in transit bytes must equal sims x timesteps x field size"
    );
}

/// Physical sanity of the live study on the paper's use case: upper
/// injector parameters do not influence the lower half of the channel.
#[test]
fn upper_parameters_do_not_reach_lower_half() {
    let mut config = StudyConfig::tiny();
    // 48 groups keeps the Martinez noise floor (~1/sqrt(n)) comfortably
    // below the signal bound regardless of the exact StdRng stream.
    config.n_groups = 48;
    config.max_concurrent_groups = 4;
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-phys");
    let mesh = config.solver.mesh();
    let (nx, ny, _) = mesh.dims();
    let ts = config.solver.n_timesteps * 8 / 10;

    let output = Study::new(config).run().expect("study failed");
    // k = 0 (conc_upper), 2 (width_upper), 4 (dur_upper).
    for k in [0usize, 2, 4] {
        let field = output.results.first_order_field(ts, k);
        let slice = SliceView::mid_plane(&mesh, &field);
        let lower = slice.window_mean(0, nx, 0, ny / 2).abs();
        let upper = slice.window_mean(0, nx, ny / 2, ny).abs();
        // The Martinez noise floor at n groups is ~1/sqrt(n); the claim is
        // that the lower half carries no *signal*, i.e. stays at noise
        // level while the upper half carries real influence.
        assert!(
            lower < 0.6 * upper.max(0.05) || lower < 0.1,
            "param {k}: lower-half influence {lower} vs upper {upper}"
        );
    }
}

/// The iterative estimator converges to analytic truth through the same
/// API the framework uses (regression guard for the mathematical core).
#[test]
fn ishigami_convergence_through_public_api() {
    let f = Ishigami::default();
    let design = PickFreeze::generate(3000, &f.parameter_space(), 2017);
    let mut sobol = IterativeSobol::new(3);
    for g in design.groups() {
        let ys: Vec<f64> = g.rows().iter().map(|r| f.eval(r)).collect();
        sobol.update_group(&ys);
    }
    let s_ref = f.analytic_first_order();
    for (k, &s_expected) in s_ref.iter().enumerate() {
        assert!(
            (sobol.first_order(k) - s_expected).abs() < 0.07,
            "S_{k}: {} vs {}",
            sobol.first_order(k),
            s_expected
        );
        assert!(sobol.first_order_ci(k).contains(sobol.first_order(k)));
    }
}

/// Early stop through the public API: convergence control cancels work.
#[test]
fn adaptive_early_stop_cancels_groups() {
    let mut config = StudyConfig::tiny();
    config.n_groups = 24;
    config.max_concurrent_groups = 2;
    // A loose target: reached after the first completed groups.
    config.target_ci_width = Some(2.9);
    config.ci_variance_floor = 1e-4;
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-adaptive");

    let output = Study::new(config).run().expect("study failed");
    assert!(output.report.early_stopped, "expected early stop");
    assert!(
        output.report.groups_finished < 24,
        "early stop should have cancelled pending groups (finished {})",
        output.report.groups_finished
    );
}

#[test]
fn quantile_step_early_stop_cancels_groups() {
    let mut config = StudyConfig::tiny();
    config.n_groups = 24;
    config.max_concurrent_groups = 2;
    // A loose quantile-step target: after the first completed groups the
    // widest possible next Robbins–Monro step (range-scaled) is well
    // below the field range, so the order-statistics signal converges
    // quickly — mirroring the CI-width early stop.
    config.target_quantile_step = Some(5.0);
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-qstep-adaptive");

    let output = Study::new(config).run().expect("study failed");
    assert!(output.report.early_stopped, "expected quantile early stop");
    assert!(
        output.report.groups_finished < 24,
        "early stop should have cancelled pending groups (finished {})",
        output.report.groups_finished
    );
    assert!(
        output.report.final_max_quantile_step.is_finite(),
        "final quantile signal must be known at stop time"
    );
    // The per-probability steps pair with the tracked probabilities and
    // the slowest estimate is the scalar signal's source.
    assert_eq!(
        output.report.final_quantile_steps.len(),
        output.report.quantile_probs.len()
    );
    let slowest = output
        .report
        .final_quantile_steps
        .iter()
        .fold(0.0f64, |a, &b| a.max(b));
    assert!(slowest <= output.report.final_max_quantile_step * (1.0 + 1e-12));
}

#[test]
fn both_targets_stop_on_the_slower_signal() {
    // With an unreachable CI target alongside a loose quantile target,
    // the study must NOT stop early: both configured signals gate.
    let mut config = StudyConfig::tiny();
    config.n_groups = 6;
    config.max_concurrent_groups = 2;
    config.target_ci_width = Some(1e-12); // unreachable
    config.target_quantile_step = Some(1e9); // trivially reached
    config.checkpoint_dir = std::env::temp_dir().join("melissa-root-dual-target");

    let output = Study::new(config).run().expect("study failed");
    assert!(
        !output.report.early_stopped,
        "an unreachable CI target must hold the study to completion"
    );
    assert_eq!(output.report.groups_finished, 6);
}
