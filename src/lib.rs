//! Umbrella crate for the Melissa (SC'17) reproduction workspace.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests can use a single dependency. Downstream users should
//! depend on the individual crates (`melissa`, `melissa-sobol`, ...) instead.

pub use melissa;
pub use melissa_daemon as daemon;
pub use melissa_mesh as mesh;
pub use melissa_scheduler as scheduler;
pub use melissa_sobol as sobol;
pub use melissa_solver as solver;
pub use melissa_stats as stats;
pub use melissa_telemetry as telemetry;
pub use melissa_transport as transport;
