//! The paper's use case end to end: a live in transit sensitivity
//! analysis of dye transport through a tube bundle (paper Section 5.2),
//! scaled to a workstation.
//!
//! Runs the full framework — launcher, batch-limited group jobs, the
//! `p + 2 = 8`-simulation groups with rank decomposition, two-stage data
//! transfer, parallel server with iterative ubiquitous Sobol' state — and
//! writes the Sobol'/variance maps at the paper's timestep 80 as CSV.
//!
//! Run with: `cargo run --release --example tube_bundle -- [n_groups]`

use melissa_repro::melissa::{Study, StudyConfig};
use melissa_repro::mesh::writer::write_slice_csv;
use melissa_repro::mesh::SliceView;
use melissa_repro::solver::injection::PARAM_NAMES;

#[allow(clippy::field_reassign_with_default)] // explicit config block reads better
fn main() {
    let n_groups: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);

    let mut config = StudyConfig::default();
    config.n_groups = n_groups;
    config.server_workers = 4;
    config.ranks_per_simulation = 2;
    config.max_concurrent_groups = std::thread::available_parallelism()
        .map(|n| (n.get() / 2).max(2))
        .unwrap_or(2);
    config.group_timeout = std::time::Duration::from_secs(60);
    config.wall_limit = std::time::Duration::from_secs(1800);
    config.checkpoint_dir = std::env::temp_dir().join("melissa-example-tube");

    println!(
        "tube-bundle study: {} groups x 8 simulations on a {}-cell mesh, {} timesteps",
        config.n_groups,
        config.solver.mesh().n_cells(),
        config.solver.n_timesteps
    );
    println!("parameters: {PARAM_NAMES:?}\n");

    let mesh = config.solver.mesh();
    let ts = config.solver.n_timesteps * 80 / 100;
    let output = Study::new(config).run().expect("study failed");

    // The launcher's accounting: zero intermediate files, everything
    // consumed in transit.
    println!("{}", output.report);

    // Export the six first-order Sobol' maps plus the variance map on the
    // mid-plane slice (the paper's Figures 7 and 8).
    let out_dir = std::path::PathBuf::from("target/tube_bundle_maps");
    std::fs::create_dir_all(&out_dir).unwrap();
    for (k, name) in PARAM_NAMES.iter().enumerate() {
        let field = output.results.first_order_field(ts, k);
        let slice = SliceView::mid_plane(&mesh, &field);
        write_slice_csv(&out_dir.join(format!("sobol_{name}.csv")), &slice).unwrap();
        println!(
            "S_{name}: range [{:+.3}, {:+.3}] on the mid-plane at timestep {ts}",
            slice.min(),
            slice.max()
        );
    }
    let variance = output.results.variance_field(ts);
    let vslice = SliceView::mid_plane(&mesh, &variance);
    write_slice_csv(&out_dir.join("variance.csv"), &vslice).unwrap();
    println!("variance: max {:.3e}", vslice.max());
    println!("\nmaps written to {}", out_dir.display());
}
