//! A **multi-node** in transit study: server shards and simulation
//! groups as separate OS processes, rendezvousing through the directory
//! service over real TCP — the paper's actual cluster deployment shape.
//!
//! One binary, three roles (selected by `MELISSA_MN_ROLE`):
//!
//! * **orchestrator** (default) — runs the same-seed *in-process*
//!   reference study, then bootstraps the deployment: starts the
//!   directory service ([`bootstrap_directory`]), spawns one **server
//!   process per shard** (placed by [`NodeMap`]) and one **group process
//!   per simulation group** (strictly sequential, matching the
//!   in-process FCFS order), collects every shard's packed worker states
//!   over the transport at study end, reduces them, and asserts the
//!   statistics are **bit-identical** to the in-process run across every
//!   family;
//! * **server** — one shard: builds its own `TcpNode` transport (per-node
//!   listener, names published to the directory), runs a full Melissa
//!   Server under its scoped namespace, and ships `pack_state` bytes to
//!   the orchestrator's collection endpoint when told to stop;
//! * **group** — one simulation group: regenerates the seeded design,
//!   resolves its shard's endpoints through the directory, streams every
//!   timestep, flushes, exits.
//!
//! The run is then repeated with a scripted **link failure**: the busiest
//! shard's server severs every established data connection mid-stream
//! (a network partition at the endpoint), the affected group's links
//! re-resolve through the directory, reconnect with backoff and resume
//! exactly-once — and the study result is **still bit-identical**.
//!
//! Mid-study the orchestrator also **scrapes** every shard's
//! `telemetry/shard<k>` endpoint through the directory (the
//! `melissa-telemetry` live-observability path) and prints the snapshot —
//! proving the scrape works across OS processes and real sockets without
//! perturbing the bit-parity assertions that follow.
//!
//! Run with: `cargo run --release --example multinode_study`

use std::process::Command;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use melissa_repro::melissa::group::{run_group, GroupContext, GroupOutcome};
use melissa_repro::melissa::launcher::bootstrap_directory;
use melissa_repro::melissa::protocol::Message;
use melissa_repro::melissa::server::checkpoint::{pack_state, unpack_state};
use melissa_repro::melissa::server::state::WorkerState;
use melissa_repro::melissa::server::{Server, ServerConfig};
use melissa_repro::melissa::shard::{reduce_worker_states, GroupRouter, NodeMap};
use melissa_repro::melissa::study::StudyResults;
use melissa_repro::melissa::{Study, StudyConfig};
use melissa_repro::sobol::design::PickFreeze;
use melissa_repro::solver::injection::InjectionParams;
use melissa_repro::telemetry::{scrape, Telemetry};
use melissa_repro::transport::directory::names;
use melissa_repro::transport::{
    KillSwitch, Receiver, TcpTransport, TcpTransportConfig, Transport, TransportKind, DIRECTORY_ENV,
};

const ROLE_ENV: &str = "MELISSA_MN_ROLE";
const SHARD_ENV: &str = "MELISSA_MN_SHARD";
const GROUP_ENV: &str = "MELISSA_MN_GROUP";
const SEVER_ENV: &str = "MELISSA_MN_SEVER_AFTER";

const N_SHARDS: usize = 2;
const N_GROUPS: usize = 6;
const CONNECT_TIMEOUT: Duration = Duration::from_secs(30);

/// The one study every role derives its world from: a pure function, so
/// separate OS processes agree on the design, the router, the partition
/// and the statistics configuration without exchanging a byte.
fn study_config() -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = N_GROUPS;
    config.n_shards = N_SHARDS;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
    config.group_timeout = Duration::from_secs(30);
    config.server_timeout = Duration::from_secs(30);
    config.checkpoint_interval = Duration::from_secs(3600);
    config.wall_limit = Duration::from_secs(600);
    config
}

fn main() {
    match std::env::var(ROLE_ENV).as_deref() {
        Ok("server") => server_process(),
        Ok("group") => group_process(),
        _ => orchestrate(),
    }
}

// ---------------------------------------------------------------- roles

/// One shard's server, in its own OS process and on its own node.
fn server_process() {
    let dir_addr = std::env::var(DIRECTORY_ENV).expect("MELISSA_DIRECTORY not seeded");
    let shard: usize = std::env::var(SHARD_ENV)
        .expect("shard id")
        .parse()
        .expect("shard id");
    let sever_after: Option<u64> = std::env::var(SEVER_ENV)
        .ok()
        .map(|v| v.parse().expect("sever threshold"));
    let scope = names::shard_scope(shard);
    let config = study_config();

    let node =
        Arc::new(TcpTransport::with_config(TcpTransportConfig::node(&dir_addr)).expect("node"));
    let transport: Arc<dyn Transport> = Arc::clone(&node) as Arc<dyn Transport>;

    let server_config = ServerConfig {
        scope: scope.clone(),
        n_workers: config.server_workers,
        n_cells: config.solver.mesh().n_cells(),
        p: InjectionParams::parameter_space().dim(),
        n_timesteps: config.solver.n_timesteps,
        hwm: config.hwm,
        group_timeout: config.group_timeout,
        checkpoint_interval: config.checkpoint_interval,
        checkpoint_dir: std::env::temp_dir()
            .join(format!("melissa-mn-ckpt-{shard}-{}", std::process::id())),
        report_interval: Duration::from_millis(200),
        track_ci: false,
        ci_variance_floor: 1e-12,
        restore: false,
        thresholds: config.thresholds.clone(),
        quantile_probs: config.quantile_probs.clone(),
        telemetry: Some(Telemetry::new(shard as u32)),
    };

    // Control endpoint (the orchestrator's stop signal) must exist before
    // ServerReady goes out, so the stop can never race the bind.
    let ctl_rx = transport.bind(&names::scoped(&scope, "ctl"), 4);
    // The launcher handshake: the orchestrator bound our per-shard inbox
    // on ITS node; the directory resolves it for us.
    let launcher_tx = transport
        .connect_retry(&names::launcher_in(&scope), CONNECT_TIMEOUT)
        .expect("launcher inbox unreachable");
    let server = Server::start(server_config, Arc::clone(&transport), launcher_tx);

    // Scripted link failure: once this shard has ingested enough frames
    // (mid-stream of an active group), sever every established inbound
    // connection — a network partition at the endpoint.  Retries until a
    // live connection is actually cut; exits non-zero if none ever was,
    // so the fault run cannot pass vacuously.
    if let Some(after) = sever_after {
        let shared = Arc::clone(server.shared());
        let node = Arc::clone(&node);
        std::thread::spawn(move || {
            while shared.messages_received.load(Ordering::Relaxed) < after {
                std::thread::sleep(Duration::from_millis(2));
            }
            for _ in 0..5000 {
                let cut = node.sever_all_connections();
                if cut > 0 {
                    eprintln!("[shard {shard}] FAULT INJECTION: severed {cut} live connections");
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            eprintln!("[shard {shard}] fault injection never found a live connection");
            std::process::exit(3);
        });
    }

    // Block until the orchestrator says the study is over.
    let _ = ctl_rx.recv();
    let states = server.stop();

    // Ship the final worker states through the checkpoint codec to the
    // orchestrator's collection endpoint — the multi-node reduction path.
    let collect_tx = transport
        .connect_retry(&names::collect_in(shard), CONNECT_TIMEOUT)
        .expect("collection endpoint unreachable");
    for state in &states {
        let packed = pack_state(state);
        let mut frame = BytesMut::with_capacity(4 + packed.len());
        frame.put_u32_le(state.worker_id() as u32);
        frame.put_slice(&packed);
        collect_tx.send(frame.freeze()).expect("ship worker state");
    }
    collect_tx
        .flush(Duration::from_secs(60))
        .expect("collection barrier");
}

/// One simulation group, in its own OS process.
fn group_process() {
    let dir_addr = std::env::var(DIRECTORY_ENV).expect("MELISSA_DIRECTORY not seeded");
    let group_id: u64 = std::env::var(GROUP_ENV)
        .expect("group id")
        .parse()
        .expect("group id");
    let config = study_config();
    let router = GroupRouter::from_config(&config);
    let scope = names::shard_scope(router.shard_of(group_id));
    let design = PickFreeze::generate(
        config.n_groups,
        &InjectionParams::parameter_space(),
        config.seed,
    );
    let transport: Arc<dyn Transport> =
        Arc::new(TcpTransport::with_config(TcpTransportConfig::node(&dir_addr)).expect("node"));

    let ctx = GroupContext {
        scope,
        group_id,
        instance: 0,
        rows: design.group(group_id as usize).rows().to_vec(),
        solver: config.solver.clone(),
        flow: Arc::new(config.solver.prerun()),
        ranks: config.ranks_per_simulation,
        transport,
        timeout: config.group_timeout,
        fault: None,
        link_fault: config.link_fault.clone(),
        wire_compression: config.wire_compression,
    };
    match run_group(ctx, &KillSwitch::new()) {
        GroupOutcome::Completed { messages, bytes } => {
            eprintln!("[group {group_id}] completed: {messages} messages, {bytes} bytes");
        }
        other => {
            eprintln!("[group {group_id}] failed: {other:?}");
            std::process::exit(1);
        }
    }
}

// --------------------------------------------------------- orchestrator

fn orchestrate() {
    println!("== reference: same-seed in-process sharded study ==");
    let mut ref_config = study_config();
    ref_config.transport = TransportKind::InProcess;
    ref_config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-mn-ref-{}", std::process::id()));
    let reference = Study::new(ref_config).run().expect("reference study");
    println!("{}", reference.report);

    println!("== multi-node: server shards + groups as separate OS processes ==");
    let clean = run_multinode(None);
    let checked = assert_results_match("multi-node vs in-process", &reference.results, &clean);
    println!("parity: {checked} statistic values bit-identical to the in-process run\n");

    println!("== multi-node again, one connection killed mid-study ==");
    let severed = run_multinode(Some(150));
    let checked = assert_results_match(
        "severed multi-node vs in-process",
        &reference.results,
        &severed,
    );
    println!(
        "parity: {checked} statistic values bit-identical after a mid-stream \
         connection kill + exactly-once reconnect"
    );
}

/// Runs the whole study as separate OS processes; `sever_after` arms the
/// scripted link failure on the shard that ingests the first group.
fn run_multinode(sever_after: Option<u64>) -> StudyResults {
    let config = study_config();
    let router = GroupRouter::from_config(&config);
    let node_map = NodeMap::new(N_SHARDS); // one node per shard
    let (directory, dir_addr) = bootstrap_directory().expect("directory bootstrap");

    // The orchestrator is itself a node: it hosts the per-shard launcher
    // inboxes and the end-of-study state-collection endpoints.
    let transport: Arc<dyn Transport> =
        Arc::new(TcpTransport::with_config(TcpTransportConfig::node(&dir_addr)).expect("node"));
    let launcher_rxs: Vec<_> = (0..N_SHARDS)
        .map(|k| transport.bind(&names::launcher_in(&names::shard_scope(k)), 1024))
        .collect();
    let collect_rxs: Vec<_> = (0..N_SHARDS)
        .map(|k| transport.bind(&names::collect_in(k), 64))
        .collect();

    // The kill must land mid-stream: arm it on the shard that serves the
    // very first group of the sequential schedule.
    let severed_shard = router.shard_of(0);

    let exe = std::env::current_exe().expect("current exe");
    let mut servers: Vec<std::process::Child> = (0..N_SHARDS)
        .map(|k| {
            let mut cmd = Command::new(&exe);
            cmd.env(ROLE_ENV, "server")
                .env(SHARD_ENV, k.to_string())
                .env(DIRECTORY_ENV, &dir_addr);
            if let (Some(after), true) = (sever_after, k == severed_shard) {
                cmd.env(SEVER_ENV, after.to_string());
            }
            println!(
                "launcher: shard {k} -> node {} (own OS process, own listener)",
                node_map.node_of_shard(k)
            );
            cmd.spawn().expect("spawn server process")
        })
        .collect();

    for (k, rx) in launcher_rxs.iter().enumerate() {
        wait_ready(rx.as_ref(), Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("shard {k}: {e}"));
    }

    // Groups: independent OS processes, strictly sequential — the same
    // FCFS schedule as `max_concurrent_groups = 1` in-process, so every
    // shard sees its groups in the same order, bit for bit.
    for g in 0..N_GROUPS as u64 {
        let status = Command::new(&exe)
            .env(ROLE_ENV, "group")
            .env(GROUP_ENV, g.to_string())
            .env(DIRECTORY_ENV, &dir_addr)
            .status()
            .expect("spawn group process");
        assert!(status.success(), "group {g} process failed: {status}");
        // Keep the per-shard control inboxes drained (reports/heartbeats).
        for rx in &launcher_rxs {
            while rx.try_recv().is_ok() {}
        }
        // Live scrape smoke: mid-study, pull every shard's telemetry
        // snapshot through the directory — the same path `melissa_top`
        // uses, here across OS processes and real sockets.
        if g == 0 {
            for k in 0..N_SHARDS {
                let snap = scrape(&transport, k, Duration::from_secs(30))
                    .unwrap_or_else(|e| panic!("scrape shard {k}: {e}"));
                assert_eq!(snap.shard, k as u32, "scrape routed to the wrong shard");
                println!(
                    "scrape[shard {k}]: {} finished, {} running, {} links, {} events, \
                     {} reconnects",
                    snap.groups_finished,
                    snap.groups_running,
                    snap.links.len(),
                    snap.events.len(),
                    snap.reconnects
                );
            }
        }
    }

    // Stop every shard and collect its packed worker states.
    let mut shard_states: Vec<Vec<WorkerState>> = Vec::new();
    for (k, collect_rx) in collect_rxs.iter().enumerate() {
        let ctl = transport
            .connect_retry(
                &names::scoped(&names::shard_scope(k), "ctl"),
                CONNECT_TIMEOUT,
            )
            .expect("ctl endpoint");
        ctl.send(Bytes::from_static(b"stop")).expect("stop signal");
        let mut states: Vec<Option<WorkerState>> =
            (0..config.server_workers).map(|_| None).collect();
        for _ in 0..config.server_workers {
            let frame = collect_rx
                .recv_timeout(Duration::from_secs(120))
                .expect("shipped worker state");
            let w = u32::from_le_bytes(frame[..4].try_into().expect("worker id")) as usize;
            let state = unpack_state(&frame[4..], w).expect("unpack shipped state");
            assert!(
                states[w].replace(state).is_none(),
                "worker {w} shipped twice"
            );
        }
        shard_states.push(states.into_iter().map(Option::unwrap).collect());
    }
    for (k, child) in servers.iter_mut().enumerate() {
        let status = child.wait().expect("server process exit");
        assert!(
            status.success(),
            "shard {k} server process failed: {status}"
        );
    }
    drop(directory);

    let reduced = reduce_worker_states(&shard_states);
    StudyResults::from_worker_states(
        InjectionParams::parameter_space().dim(),
        config.solver.n_timesteps,
        config.solver.mesh().n_cells(),
        reduced,
    )
}

/// Waits for a `ServerReady` on one shard's launcher inbox.
fn wait_ready(rx: &dyn Receiver, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err("server process never became ready".into());
        }
        match rx.recv_timeout(left) {
            Ok(frame) => {
                if let Ok(Message::ServerReady) = Message::decode(&frame) {
                    return Ok(());
                }
            }
            Err(_) => return Err("server process never became ready".into()),
        }
    }
}

/// Compares every statistics family bit for bit; returns values checked.
fn assert_results_match(what: &str, a: &StudyResults, b: &StudyResults) -> usize {
    let mut checked = 0usize;
    let n_ts = a.n_timesteps();
    assert_eq!(n_ts, b.n_timesteps(), "{what}: timestep count");
    let mut eq = |name: &str, ts: usize, x: &[f64], y: &[f64]| {
        assert_eq!(x.len(), y.len(), "{what}: {name} ts {ts} length");
        for (c, (va, vb)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: {name} ts {ts} cell {c}: {va} vs {vb}"
            );
        }
        checked += x.len();
    };
    for ts in [0, n_ts / 2, n_ts - 1] {
        assert_eq!(
            a.groups_integrated(ts),
            b.groups_integrated(ts),
            "{what}: group count ts {ts}"
        );
        for k in 0..a.dim() {
            eq(
                "S_k",
                ts,
                &a.first_order_field(ts, k),
                &b.first_order_field(ts, k),
            );
            eq(
                "ST_k",
                ts,
                &a.total_order_field(ts, k),
                &b.total_order_field(ts, k),
            );
        }
        eq("variance", ts, &a.variance_field(ts), &b.variance_field(ts));
        eq("mean", ts, &a.mean_field(ts), &b.mean_field(ts));
        eq("min", ts, &a.min_field(ts), &b.min_field(ts));
        eq("max", ts, &a.max_field(ts), &b.max_field(ts));
        eq(
            "P(Y>thr)",
            ts,
            &a.threshold_probability_field(ts, 0),
            &b.threshold_probability_field(ts, 0),
        );
        for (i, _) in a.quantile_probs().to_vec().iter().enumerate() {
            eq(
                "quantile",
                ts,
                &a.quantile_field(ts, i),
                &b.quantile_field(ts, i),
            );
        }
    }
    checked
}
