//! A complete in transit study over **real TCP loopback sockets**.
//!
//! Same framework stack as `tube_bundle` — launcher, batch runner,
//! simulation groups, two-stage transfer, parallel server — but every
//! frame crosses an actual `std::net` socket through the
//! `TcpTransport` backend instead of an in-process channel.  The study is
//! then repeated over the in-process backend with the same seed, and the
//! resulting Sobol' maps are compared **bit for bit**: the transport is a
//! pluggable backend, not a source of numerical noise.
//!
//! Run with: `cargo run --release --example tcp_study`

use std::time::Duration;

use melissa_repro::melissa::{Study, StudyConfig};
use melissa_repro::transport::TransportKind;

fn config(kind: TransportKind, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.transport = kind;
    config.n_groups = 6;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-tcp-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

fn main() {
    println!("== study over TCP loopback ==");
    let tcp = Study::new(config(TransportKind::Tcp, "tcp"))
        .run()
        .expect("TCP study failed");
    println!("{}", tcp.report);

    println!("== same seeded study, in-process ==");
    let inproc = Study::new(config(TransportKind::InProcess, "inproc"))
        .run()
        .expect("in-process study failed");
    println!("{}", inproc.report);

    // The whole point of the trait surface: identical statistics.
    let last = tcp.results.n_timesteps() - 1;
    let mut checked = 0usize;
    for k in 0..tcp.results.dim() {
        let a = tcp.results.first_order_field(last, k);
        let b = inproc.results.first_order_field(last, k);
        for (c, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "S_{k} diverged at cell {c}: {x} vs {y}"
            );
            checked += 1;
        }
    }
    let var_tcp = tcp.results.variance_field(last);
    let var_inp = inproc.results.variance_field(last);
    for (x, y) in var_tcp.iter().zip(&var_inp) {
        assert_eq!(x.to_bits(), y.to_bits(), "variance diverged");
        checked += 1;
    }
    println!(
        "parity: {checked} statistic values bit-identical across backends \
         ({} data frames over real sockets, {:.1} MiB, {} blocked sends)",
        tcp.report.data_messages,
        tcp.report.data_mib(),
        tcp.report.blocked_sends,
    );
}
