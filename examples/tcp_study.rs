//! A complete in transit study over **real TCP loopback sockets**.
//!
//! Same framework stack as `tube_bundle` — launcher, batch runner,
//! simulation groups, two-stage transfer, parallel server — but every
//! frame crosses an actual `std::net` socket through the
//! `TcpTransport` backend instead of an in-process channel.  The study is
//! then repeated over the in-process backend with the same seed, and the
//! resulting Sobol' maps are compared **bit for bit**: the transport is a
//! pluggable backend, not a source of numerical noise.
//!
//! A third leg re-runs the TCP study with **lossless in-frame wire
//! compression** (`WireCompression::Transpose`): still bit-identical —
//! the codec lives strictly inside the frame payload — while the link
//! moves measurably fewer bytes than the payload it carries.
//!
//! Run with: `cargo run --release --example tcp_study`

use std::time::Duration;

use melissa_repro::melissa::{Study, StudyConfig};
use melissa_repro::transport::{TransportKind, WireCompression};

fn config(kind: TransportKind, compression: WireCompression, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.transport = kind;
    config.wire_compression = compression;
    config.n_groups = 6;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-tcp-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

fn main() {
    println!("== study over TCP loopback ==");
    let tcp = Study::new(config(TransportKind::Tcp, WireCompression::Off, "tcp"))
        .run()
        .expect("TCP study failed");
    println!("{}", tcp.report);

    println!("== same seeded study, in-process ==");
    let inproc = Study::new(config(
        TransportKind::InProcess,
        WireCompression::Off,
        "inproc",
    ))
    .run()
    .expect("in-process study failed");
    println!("{}", inproc.report);

    println!("== same seeded study, TCP with wire compression ==");
    let zipped = Study::new(config(
        TransportKind::Tcp,
        WireCompression::Transpose,
        "zip",
    ))
    .run()
    .expect("compressed TCP study failed");
    println!("{}", zipped.report);

    // The whole point of the trait surface: identical statistics —
    // across backends AND with the wire codec on.
    let last = tcp.results.n_timesteps() - 1;
    let mut checked = 0usize;
    for k in 0..tcp.results.dim() {
        let a = tcp.results.first_order_field(last, k);
        let b = inproc.results.first_order_field(last, k);
        let z = zipped.results.first_order_field(last, k);
        for (c, ((x, y), w)) in a.iter().zip(&b).zip(&z).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "S_{k} diverged at cell {c}: {x} vs {y}"
            );
            assert_eq!(
                x.to_bits(),
                w.to_bits(),
                "S_{k} diverged under compression at cell {c}: {x} vs {w}"
            );
            checked += 2;
        }
    }
    let var_tcp = tcp.results.variance_field(last);
    let var_inp = inproc.results.variance_field(last);
    let var_zip = zipped.results.variance_field(last);
    for ((x, y), w) in var_tcp.iter().zip(&var_inp).zip(&var_zip) {
        assert_eq!(x.to_bits(), y.to_bits(), "variance diverged");
        assert_eq!(
            x.to_bits(),
            w.to_bits(),
            "variance diverged under compression"
        );
        checked += 2;
    }
    println!(
        "parity: {checked} statistic values bit-identical across backends \
         ({} data frames over real sockets, {:.1} MiB, {} blocked sends)",
        tcp.report.data_messages,
        tcp.report.data_mib(),
        tcp.report.blocked_sends,
    );
    assert!(
        zipped.report.link_wire_bytes < zipped.report.link_bytes,
        "compressed study moved {} wire bytes for {} payload bytes",
        zipped.report.link_wire_bytes,
        zipped.report.link_bytes
    );
    println!(
        "wire: {:.1} MiB payload went over the socket as {:.1} MiB \
         ({:.2}x compression), statistics untouched",
        zipped.report.link_bytes as f64 / (1024.0 * 1024.0),
        zipped.report.link_wire_bytes as f64 / (1024.0 * 1024.0),
        zipped.report.link_bytes as f64 / zipped.report.link_wire_bytes as f64,
    );
}
