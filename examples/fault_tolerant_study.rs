//! Fault-tolerance demonstration (paper Section 4.2): a study survives a
//! crashing group, a zombie group *and* a server crash — and still
//! produces exactly the statistics of an undisturbed run.
//!
//! Run with: `cargo run --release --example fault_tolerant_study`

use std::time::Duration;

use melissa_repro::melissa::{FaultPlan, GroupFault, Study, StudyConfig};

fn main() {
    let mut config = StudyConfig::tiny();
    config.n_groups = 6;
    config.max_concurrent_groups = 2;
    config.checkpoint_interval = Duration::from_millis(300);
    config.server_timeout = Duration::from_millis(1500);
    config.group_timeout = Duration::from_millis(1200);
    config.checkpoint_dir = std::env::temp_dir().join("melissa-example-ft");
    std::fs::remove_dir_all(&config.checkpoint_dir).ok();

    // Reference run: no faults.
    println!("reference run (no faults)...");
    let clean = Study::new(config.clone())
        .run()
        .expect("clean study failed");
    let last = config.solver.n_timesteps - 1;
    let reference = clean.results.first_order_field(last, 0);

    // Faulty run: group 2 crashes mid-flight, group 4 is a zombie, and
    // the server is killed after the first group completes.
    println!("faulty run: group crash + zombie + server kill...");
    let faults = FaultPlan::none()
        .with_group_fault(2, 0, GroupFault::CrashAfter { at_timestep: 6 })
        .with_group_fault(4, 0, GroupFault::Zombie)
        .with_server_kill_after(1);
    let output = Study::new(config)
        .with_faults(faults)
        .run()
        .expect("faulty study failed");

    println!("{}", output.report);

    // The defining property: despite three injected failures, the final
    // ubiquitous statistics are bit-comparable to the clean run.
    let recovered = output.results.first_order_field(last, 0);
    let max_diff = reference
        .iter()
        .zip(&recovered)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |S_0(x) clean - S_0(x) faulty| = {max_diff:.3e}");
    assert!(max_diff < 1e-10, "fault recovery biased the statistics");
    println!("=> fault recovery preserved the statistics exactly");
}
