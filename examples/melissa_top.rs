//! `top` for a running Melissa study: polls every shard's live
//! telemetry endpoint over the study's own transport and renders
//! per-shard progress while the statistics are being computed.
//!
//! The same seeded 2-shard study runs four times — unscraped and
//! scraped-while-running, over in-process channels and over real TCP
//! loopback sockets.  The scraper shares the study's transport fabric
//! and hammers the `telemetry/shard<k>` endpoints the whole time; the
//! example then asserts the scraped runs' statistics are
//! **bit-identical** to the unscraped references: live observability
//! perturbs nothing.
//!
//! Along the way it prints one JSON and one Prometheus-format snapshot,
//! the other two wire formats a scraper can ask for.
//!
//! Run with: `cargo run --release --example melissa_top`
//!
//! With `-- --daemon` the top view points at a multi-tenant daemon
//! instead: the study is submitted over the control plane, the per-shard
//! rows come from the study's scoped `study<id>/telemetry/shard<k>`
//! endpoints, and each render is followed by the daemon-level aggregate
//! (queue depth, per-tenant usage, admission counters) from
//! `telemetry/daemon`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use melissa_repro::daemon::{Daemon, DaemonClient, DaemonConfig, StudyState};
use melissa_repro::melissa::{Study, StudyConfig, StudyOutput};
use melissa_repro::telemetry::{scrape, scrape_text, ScrapeFormat, ScrapeReply, ScrapeSnapshot};
use melissa_repro::transport::{make_transport, TransportKind};

const N_SHARDS: usize = 2;
const N_GROUPS: usize = 6;
const POLL_EVERY: Duration = Duration::from_millis(25);
const RENDER_EVERY: Duration = Duration::from_millis(250);

fn config(kind: TransportKind, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = N_GROUPS;
    config.n_shards = N_SHARDS;
    config.transport = kind;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
    config.group_timeout = Duration::from_secs(15);
    config.server_timeout = Duration::from_secs(15);
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-top-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

/// One rendered frame of the live view.
fn render(rows: &[ScrapeSnapshot]) {
    println!(
        "shard  backend      up(s)   fin  run     frames       bytes        wire  zip  epoch  rcon  events"
    );
    for s in rows {
        let (frames, bytes, wire) = s.links.iter().fold((0u64, 0u64, 0u64), |acc, l| {
            (acc.0 + l.messages, acc.1 + l.bytes, acc.2 + l.wire_bytes)
        });
        // Live payload/wire ratio: 1.00x on uncompressed or in-process
        // links (whose wire rollup falls back to the payload bytes).
        let zip = if wire > 0 {
            format!("{:.2}x", bytes as f64 / wire as f64)
        } else {
            "-".into()
        };
        println!(
            "{:>5}  {:<11} {:>6.1} {:>5} {:>4} {:>10} {:>11} {:>11} {:>4} {:>6} {:>5} {:>7}",
            s.shard,
            s.backend,
            s.uptime_nanos as f64 / 1e9,
            s.groups_finished,
            s.groups_running,
            frames,
            bytes,
            wire,
            zip,
            s.routing_epoch,
            s.reconnects,
            s.events.len(),
        );
    }
}

/// Runs the study on a shared transport while the main thread polls all
/// shards' scrape endpoints and renders a live table.
fn run_live(kind: TransportKind, tag: &str) -> StudyOutput {
    let cfg = config(kind.clone(), tag);
    std::fs::remove_dir_all(&cfg.checkpoint_dir).ok();
    let dir = cfg.checkpoint_dir.clone();
    let transport = make_transport(kind);
    let study_transport = Arc::clone(&transport);
    let study = std::thread::spawn(move || {
        Study::new(cfg)
            .run_on(study_transport)
            .expect("study failed")
    });

    // Render the first successful poll immediately.
    let mut last_render = Instant::now() - RENDER_EVERY;
    let mut printed_formats = false;
    let (mut polls, mut hits) = (0usize, 0usize);
    while !study.is_finished() {
        std::thread::sleep(POLL_EVERY);
        let mut rows = Vec::new();
        for k in 0..N_SHARDS {
            polls += 1;
            // Polls race the study lifecycle: endpoints appear when each
            // shard's server starts and vanish when it stops, so misses
            // are normal at the edges.
            if let Ok(snap) = scrape(&transport, k, Duration::from_millis(400)) {
                assert_eq!(snap.shard, k as u32, "scrape answered by the wrong shard");
                hits += 1;
                rows.push(snap);
            }
        }
        if !rows.is_empty() && last_render.elapsed() >= RENDER_EVERY {
            last_render = Instant::now();
            render(&rows);
        }
        if !printed_formats && !rows.is_empty() {
            // Exercise the two text wire formats once; retried next poll
            // if the shard went away between the binary and text scrapes.
            let shard = rows[0].shard as usize;
            let json = scrape_text(
                &transport,
                shard,
                ScrapeFormat::Json,
                Duration::from_millis(400),
            );
            let prom = scrape_text(
                &transport,
                shard,
                ScrapeFormat::Prometheus,
                Duration::from_millis(400),
            );
            if let (Ok(json), Ok(prom)) = (json, prom) {
                let cut = json.char_indices().nth(160).map_or(json.len(), |(i, _)| i);
                println!("json scrape:       {}…", &json[..cut]);
                let head: Vec<&str> = prom.lines().take(4).collect();
                println!("prometheus scrape: {}", head.join(" | "));
                printed_formats = true;
            }
        }
    }
    let out = study.join().expect("study thread panicked");
    println!("live scrape: {hits}/{polls} polls answered mid-study");
    assert!(hits > 0, "no live scrape ever landed");
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// Asserts every order-exact and Sobol' family matches bit for bit.
fn assert_bit_identical(what: &str, a: &StudyOutput, b: &StudyOutput) -> usize {
    assert_eq!(
        a.report.data_messages, b.report.data_messages,
        "{what}: traffic"
    );
    assert_eq!(a.report.data_bytes, b.report.data_bytes, "{what}: bytes");
    assert_eq!(
        a.report.groups_finished, b.report.groups_finished,
        "{what}: groups"
    );
    let mut checked = 0usize;
    let n_ts = a.results.n_timesteps();
    let mut eq = |name: &str, ts: usize, x: &[f64], y: &[f64]| {
        assert_eq!(x.len(), y.len());
        for (c, (va, vb)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: {name} ts {ts} cell {c}: {va} vs {vb}"
            );
        }
        checked += x.len();
    };
    for ts in [0, n_ts / 2, n_ts - 1] {
        for k in 0..a.results.dim() {
            eq(
                "S_k",
                ts,
                &a.results.first_order_field(ts, k),
                &b.results.first_order_field(ts, k),
            );
        }
        eq(
            "mean",
            ts,
            &a.results.mean_field(ts),
            &b.results.mean_field(ts),
        );
        eq(
            "min",
            ts,
            &a.results.min_field(ts),
            &b.results.min_field(ts),
        );
        eq(
            "max",
            ts,
            &a.results.max_field(ts),
            &b.results.max_field(ts),
        );
        for q in 0..a.results.quantile_probs().len() {
            eq(
                "quantile",
                ts,
                &a.results.quantile_field(ts, q),
                &b.results.quantile_field(ts, q),
            );
        }
    }
    checked
}

fn run_reference(kind: TransportKind, tag: &str) -> StudyOutput {
    let cfg = config(kind, tag);
    std::fs::remove_dir_all(&cfg.checkpoint_dir).ok();
    let dir = cfg.checkpoint_dir.clone();
    let out = Study::new(cfg).run().expect("reference study failed");
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// The `--daemon` variant: same live table, but the study runs inside a
/// multi-tenant daemon and the scraper uses the study's scoped shard
/// endpoints plus the daemon-level aggregate.
fn run_daemon_top() {
    let transport = make_transport(TransportKind::InProcess);
    let daemon = Daemon::start(Arc::clone(&transport), DaemonConfig::default());
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let cfg = config(TransportKind::InProcess, "daemon-top");
    std::fs::remove_dir_all(&cfg.checkpoint_dir).ok();
    let dir = cfg.checkpoint_dir.clone();
    let id = client.submit("acme", 0, cfg).expect("study admitted");
    println!("submitted as tenant acme → study {id}");

    let mut last_render = Instant::now() - RENDER_EVERY;
    let (mut polls, mut hits, mut aggregate_hits) = (0usize, 0usize, 0usize);
    let deadline = Instant::now() + Duration::from_secs(240);
    loop {
        let status = client.status(id).expect("status");
        if status.state.is_terminal() {
            assert_eq!(status.state, StudyState::Done, "hosted study failed");
            assert_eq!(status.groups_finished as usize, N_GROUPS);
            break;
        }
        assert!(Instant::now() < deadline, "hosted study never finished");
        std::thread::sleep(POLL_EVERY);

        let mut rows = Vec::new();
        for k in 0..N_SHARDS {
            polls += 1;
            // Same lifecycle races as the standalone view: the scoped
            // endpoints exist only while the study's servers are up.
            if let Ok(ScrapeReply::Snapshot(snap)) =
                client.scrape_study(id, k, ScrapeFormat::Binary)
            {
                assert_eq!(snap.shard, k as u32, "scrape answered by the wrong shard");
                hits += 1;
                rows.push(*snap);
            }
        }
        if !rows.is_empty() && last_render.elapsed() >= RENDER_EVERY {
            last_render = Instant::now();
            render(&rows);
            if let Ok(json) = client.scrape_daemon(ScrapeFormat::Json) {
                aggregate_hits += 1;
                let cut = json.char_indices().nth(160).map_or(json.len(), |(i, _)| i);
                println!("daemon aggregate:  {}…", &json[..cut]);
            }
        }
    }
    println!("live scrape: {hits}/{polls} shard polls answered, {aggregate_hits} aggregates");
    assert!(hits > 0, "no per-study scrape ever landed");
    assert!(
        aggregate_hits > 0,
        "the daemon telemetry endpoint never answered"
    );
    let results = client.results(id).expect("results");
    assert_eq!(
        results.n_timesteps(),
        StudyConfig::tiny().solver.n_timesteps
    );
    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
    println!("TOP PASS (daemon): hosted study observed live through scoped + aggregate endpoints");
}

fn main() {
    if std::env::args().any(|a| a == "--daemon") {
        run_daemon_top();
        return;
    }
    let mut total = 0usize;
    for (kind, name) in [
        (TransportKind::InProcess, "in-process"),
        (TransportKind::Tcp, "tcp"),
    ] {
        println!("== unscraped reference, {name} ==");
        let reference = run_reference(kind.clone(), &format!("ref-{name}"));
        println!(
            "reference done: {} groups, {} frames",
            reference.report.groups_finished, reference.report.data_messages
        );
        println!("== same seeded study, scraped live, {name} ==");
        let live = run_live(kind, &format!("live-{name}"));
        total += assert_bit_identical(name, &reference, &live);
    }
    println!("TOP PASS: {total} statistic values bit-identical with and without live scraping");
}
