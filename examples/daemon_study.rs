//! Melissa as a service: two tenants share one daemon's node pool.
//!
//! For each transport backend (in-process channels, then real TCP
//! loopback sockets) the example starts a [`Daemon`], submits two
//! tenants' seeded studies concurrently over the control plane, and
//! watches them run through the per-study scrape endpoints and the
//! daemon-level aggregate snapshot.  When both studies finish, their
//! statistics come back over the `results` RPC and are asserted
//! **bit-identical** to same-seed standalone `Study::run` references —
//! multi-tenant hosting on a shared pool perturbs nothing.
//!
//! Along the way it shows the admission controller doing its job: a
//! submission past the tenant's concurrent-study quota is rejected with
//! a typed `QuotaExceeded { tenant, resource }` instead of queueing
//! forever.
//!
//! Run with: `cargo run --release --example daemon_study`

use std::sync::Arc;
use std::time::{Duration, Instant};

use melissa_repro::daemon::{Daemon, DaemonClient, DaemonConfig, StudyState, TenantQuota};
use melissa_repro::melissa::client::ClientError;
use melissa_repro::melissa::{Study, StudyConfig, StudyResults};
use melissa_repro::telemetry::{ScrapeFormat, ScrapeReply};
use melissa_repro::transport::{make_transport, TransportKind};

const N_GROUPS: usize = 4;
const WAIT: Duration = Duration::from_secs(240);

fn seeded_config(kind: TransportKind, seed: u64, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = N_GROUPS;
    config.max_concurrent_groups = 1; // submission order ⇒ bit-reproducible
    config.transport = kind;
    config.seed = seed;
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-daemon-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

/// Bit-compares every statistics family the results expose.
fn assert_bit_identical(what: &str, hosted: &StudyResults, standalone: &StudyResults) -> usize {
    assert_eq!(hosted.dim(), standalone.dim(), "{what}: dim");
    assert_eq!(hosted.n_timesteps(), standalone.n_timesteps());
    assert_eq!(hosted.n_cells(), standalone.n_cells());
    let mut checked = 0usize;
    let n_ts = standalone.n_timesteps();
    let mut eq = |name: &str, ts: usize, a: &[f64], b: &[f64]| {
        assert_eq!(a.len(), b.len());
        for (c, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {name} ts {ts} cell {c}: {x} (daemon) vs {y} (standalone)"
            );
        }
        checked += a.len();
    };
    for ts in [0, n_ts / 2, n_ts - 1] {
        for k in 0..standalone.dim() {
            eq(
                "S_k",
                ts,
                &hosted.first_order_field(ts, k),
                &standalone.first_order_field(ts, k),
            );
            eq(
                "ST_k",
                ts,
                &hosted.total_order_field(ts, k),
                &standalone.total_order_field(ts, k),
            );
        }
        eq(
            "mean",
            ts,
            &hosted.mean_field(ts),
            &standalone.mean_field(ts),
        );
        eq(
            "variance",
            ts,
            &hosted.variance_field(ts),
            &standalone.variance_field(ts),
        );
        eq("min", ts, &hosted.min_field(ts), &standalone.min_field(ts));
        eq("max", ts, &hosted.max_field(ts), &standalone.max_field(ts));
        for q in 0..standalone.quantile_probs().len() {
            eq(
                "quantile",
                ts,
                &hosted.quantile_field(ts, q),
                &standalone.quantile_field(ts, q),
            );
        }
    }
    checked
}

fn run_backend(kind: TransportKind, name: &str) -> usize {
    println!("== two tenants, one pool, {name} ==");
    let transport = make_transport(kind.clone());
    let daemon = Daemon::start(
        Arc::clone(&transport),
        DaemonConfig {
            pool_units: 4,
            default_quota: TenantQuota {
                max_studies: 1,
                ..TenantQuota::default()
            },
            ..DaemonConfig::default()
        },
    );
    let client = DaemonClient::new(Arc::clone(&transport), Duration::from_secs(10));

    let acme_cfg = seeded_config(kind.clone(), 2017, &format!("acme-{name}"));
    let globex_cfg = seeded_config(kind.clone(), 4242, &format!("globex-{name}"));
    let acme = client
        .submit("acme", 0, acme_cfg.clone())
        .expect("acme admitted");
    let globex = client
        .submit("globex", 0, globex_cfg.clone())
        .expect("globex admitted");
    println!("submitted: acme → study {acme}, globex → study {globex}");

    // The admission controller rejects past quota instead of blocking.
    match client.submit("acme", 0, acme_cfg.clone()) {
        Err(ClientError::QuotaExceeded { tenant, resource }) => {
            println!("admission: second acme study rejected ({tenant} is out of {resource})")
        }
        other => panic!("expected a typed quota rejection, got {other:?}"),
    }

    // Watch both studies through the per-study scrape endpoints and the
    // daemon aggregate while they share the pool.  Endpoints appear and
    // vanish with each study's server lifecycle, so misses are normal.
    let mut study_hits = 0usize;
    let mut daemon_hits = 0usize;
    let deadline = Instant::now() + WAIT;
    loop {
        let a = client.status(acme).expect("acme status");
        let g = client.status(globex).expect("globex status");
        for (id, status) in [(acme, &a), (globex, &g)] {
            if status.state != StudyState::Running {
                continue;
            }
            if let Ok(ScrapeReply::Snapshot(snap)) =
                client.scrape_study(id, 0, ScrapeFormat::Binary)
            {
                study_hits += 1;
                println!(
                    "study {id} shard 0: {} finished, {} running ({} frames so far)",
                    snap.groups_finished,
                    snap.groups_running,
                    snap.links.iter().map(|l| l.messages).sum::<u64>(),
                );
            }
        }
        if let Ok(json) = client.scrape_daemon(ScrapeFormat::Json) {
            daemon_hits += 1;
            if daemon_hits == 1 {
                let cut = json.char_indices().nth(200).map_or(json.len(), |(i, _)| i);
                println!("daemon snapshot:   {}…", &json[..cut]);
            }
        }
        if a.state.is_terminal() && g.state.is_terminal() {
            assert_eq!(a.state, StudyState::Done, "acme failed");
            assert_eq!(g.state, StudyState::Done, "globex failed");
            break;
        }
        assert!(Instant::now() < deadline, "studies never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("live scrapes landed: {study_hits} per-study, {daemon_hits} daemon-aggregate");
    assert!(daemon_hits > 0, "daemon telemetry endpoint never answered");

    let acme_hosted = client.results(acme).expect("acme results");
    let globex_hosted = client.results(globex).expect("globex results");
    daemon.stop();

    // Same-seed standalone references, fresh checkpoint scopes.
    let mut checked = 0usize;
    for (tag, cfg, hosted) in [
        ("acme", acme_cfg, &acme_hosted),
        ("globex", globex_cfg, &globex_hosted),
    ] {
        let mut reference = cfg;
        reference.checkpoint_dir = reference.checkpoint_dir.join("standalone");
        let out = Study::new(reference).run().expect("standalone reference");
        checked += assert_bit_identical(&format!("{name}/{tag}"), hosted, &out.results);
    }
    println!("{name}: both tenants bit-identical to standalone ({checked} values)");
    checked
}

fn main() {
    let mut total = 0usize;
    total += run_backend(TransportKind::InProcess, "in-process");
    total += run_backend(TransportKind::Tcp, "tcp");
    println!(
        "DAEMON PASS: {total} statistic values bit-identical between daemon-hosted and \
         standalone runs across both backends"
    );
}
