//! Convergence-controlled (adaptive) study — the loopback control of
//! paper Sections 3.4 and 4.1.5: Melissa Server evaluates the asymptotic
//! confidence intervals at every update, and once the widest interval
//! falls below a target, the launcher cancels the remaining simulation
//! groups, saving their compute entirely.
//!
//! Run with: `cargo run --release --example adaptive_study`

use melissa_repro::melissa::{Study, StudyConfig};

fn main() {
    // Submit far more groups than needed and let convergence control
    // decide when to stop.
    let mut config = StudyConfig::tiny();
    config.n_groups = 40;
    config.max_concurrent_groups = 4;
    config.target_ci_width = Some(1.2);
    config.ci_variance_floor = 1e-4;
    config.wall_limit = std::time::Duration::from_secs(300);
    config.checkpoint_dir = std::env::temp_dir().join("melissa-example-adaptive");

    println!(
        "adaptive study: up to {} groups, stop when max CI width < {}",
        config.n_groups,
        config.target_ci_width.unwrap()
    );
    let output = Study::new(config.clone()).run().expect("study failed");
    println!("{}", output.report);

    if output.report.early_stopped {
        let saved = config.n_groups - output.report.groups_finished;
        println!(
            "converged after {} groups: cancelled ~{saved} pending groups ({:.0} % of the budget)",
            output.report.groups_finished,
            100.0 * saved as f64 / config.n_groups as f64
        );
    } else {
        println!("ran the full budget without hitting the target CI width");
    }

    // The statistics are still valid ubiquitous Sobol' fields.
    let ts = config.solver.n_timesteps - 1;
    let s0 = output.results.first_order_field(ts, 0);
    let max_s = s0.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "S_conc_upper at final timestep: max {max_s:.3} over {} cells, from {} integrated groups",
        s0.len(),
        output.results.groups_integrated(ts)
    );
}
