//! Quickstart: iterative Sobol' indices of the Ishigami function.
//!
//! The smallest possible Melissa workflow — no cluster, no server, just
//! the mathematical core: a pick-freeze design, the one-pass Martinez
//! estimator, and its confidence intervals, validated against the
//! function's analytic indices.
//!
//! Run with: `cargo run --release --example quickstart`

use melissa_repro::sobol::design::PickFreeze;
use melissa_repro::sobol::martinez::IterativeSobol;
use melissa_repro::sobol::testfn::{Ishigami, TestFunction};

fn main() {
    let f = Ishigami::default();

    // 1. Draw the pick-freeze design: n rows of matrices A and B.
    //    Each row defines one simulation group of p + 2 = 5 runs.
    let n = 2000;
    let design = PickFreeze::generate(n, &f.parameter_space(), 42);
    println!(
        "design: {} groups x {} simulations",
        design.n_rows(),
        f.dim() + 2
    );

    // 2. Feed groups to the iterative estimator *as they complete* —
    //    in any order, with O(1) memory, exactly like Melissa Server.
    let mut sobol = IterativeSobol::new(f.dim());
    for group in design.groups() {
        let outputs: Vec<f64> = group.rows().iter().map(|x| f.eval(x)).collect();
        sobol.update_group(&outputs);
    }

    // 3. Read off indices and confidence intervals.
    let s_ref = f.analytic_first_order();
    let st_ref = f.analytic_total_order();
    println!(
        "\n{:<6} {:>9} {:>9} {:>22} {:>9} {:>9}",
        "param", "S (est)", "S (ref)", "95% CI", "ST (est)", "ST (ref)"
    );
    for k in 0..f.dim() {
        let s = sobol.first_order(k);
        let ci = sobol.first_order_ci(k);
        println!(
            "x{:<5} {s:>9.4} {:>9.4} [{:>8.4}, {:>8.4}] {:>9.4} {:>9.4}",
            k + 1,
            s_ref[k],
            ci.lo,
            ci.hi,
            sobol.total_order(k),
            st_ref[k]
        );
        assert!(ci.contains(s), "estimate must lie in its own CI");
    }
    println!(
        "\ninteraction share 1 - sum(S_k) = {:.4} (analytic: {:.4})",
        sobol.interaction_share(),
        1.0 - s_ref.iter().sum::<f64>()
    );
    println!("widest CI over all indices: {:.4}", sobol.max_ci_width());

    // 4. Order statistics ride the same one-pass stream: Robbins–Monro
    //    quantiles (arXiv:1905.04180) with the adaptive range step,
    //    borrowing the min/max envelope the server tracks anyway.
    use melissa_repro::stats::{FieldMinMax, FieldQuantiles};
    let mut envelope = FieldMinMax::new(1);
    let mut quantiles = FieldQuantiles::new(1, &[0.05, 0.5, 0.95]);
    for group in design.groups() {
        // The Y^A role output of each group is an i.i.d. draw.
        let y = f.eval(&group.rows()[0]);
        envelope.update(&[y]);
        quantiles.update(&[y], &envelope);
    }
    println!(
        "output percentiles (5 % / median / 95 %): {:.3} / {:.3} / {:.3}, \
         next-step bound {:.4}",
        quantiles.quantile_at(0, 0),
        quantiles.quantile_at(0, 1),
        quantiles.quantile_at(0, 2),
        quantiles.max_step_width(&envelope),
    );
}
