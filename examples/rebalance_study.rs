//! Epoch-fenced live rebalancing: a 4-shard study survives a drain-and-
//! move migration onto a *freshly joined* fifth shard AND the permanent
//! death of another shard (re-homed from its checkpoint to a surviving
//! peer) — and the order-exact statistics families (min/max envelope,
//! threshold exceedance, group bookkeeping) come out **bit-identical**
//! to the static fault-free run of the same seed, over in-process
//! channels and over real TCP loopback sockets alike.
//!
//! Failure is just migration with an unplanned source: both paths raise
//! a routing epoch, fence the moved groups (no frame is ever integrated
//! twice — the study-end reduction panics if one is), and fold the
//! resulting worker-state lineages in canonical order at study end.
//! Sobol'/moments agree to pairwise-merge rounding; the Robbins–Monro
//! quantiles are order-dependent by construction and excluded from the
//! bit-comparison (see `melissa::shard`).
//!
//! Run with: `cargo run --release --example rebalance_study`

use std::time::Duration;

use melissa_repro::melissa::{
    FaultPlan, GroupRouter, Migration, MigrationMoves, ShardKill, Study, StudyConfig, StudyOutput,
};
use melissa_repro::transport::TransportKind;

const N_SHARDS: usize = 4;
const N_GROUPS: usize = 10;

fn config(kind: TransportKind, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = N_GROUPS;
    config.n_shards = N_SHARDS;
    config.transport = kind;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
    config.thresholds = vec![0.1, 0.5];
    // Warm checkpoints: the permanently killed shard re-homes from its
    // latest one.
    config.checkpoint_interval = Duration::from_millis(150);
    config.group_timeout = Duration::from_secs(20);
    config.server_timeout = Duration::from_secs(20);
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-rebal-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

fn run(config: StudyConfig, faults: FaultPlan) -> StudyOutput {
    std::fs::remove_dir_all(&config.checkpoint_dir).ok();
    let dir = config.checkpoint_dir.clone();
    let out = Study::new(config)
        .with_faults(faults)
        .run()
        .expect("study failed");
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// The chaos script: the busiest shard drains onto a brand-new slot
/// (elastic scale-out + scale-in in one fence) and the second-busiest
/// dies for good, re-homed to a surviving peer.
fn chaos_plan(router: &GroupRouter) -> (FaultPlan, usize, usize) {
    let mut by_load: Vec<usize> = (0..N_SHARDS).collect();
    by_load.sort_by_key(|&k| std::cmp::Reverse(router.groups_for_shard(k, N_GROUPS).len()));
    let (src, victim) = (by_load[0], by_load[1]);
    let adopter = (0..N_SHARDS)
        .find(|k| *k != src && *k != victim)
        .expect("4 shards leave a surviving peer");
    let plan = FaultPlan::none()
        .with_migration(Migration {
            from: src,
            to: N_SHARDS, // beyond the configured shards: a fresh slot joins
            after_finished_groups: 1,
            moves: MigrationMoves::AllUnfinished,
        })
        .with_shard_kill(ShardKill {
            shard: victim,
            after_finished_groups: 1,
            permanent: true,
            rehome_to: Some(adopter),
        });
    (plan, src, victim)
}

/// Order-exact families, bit for bit; returns the number of values checked.
fn assert_order_exact_identical(what: &str, a: &StudyOutput, b: &StudyOutput) -> usize {
    let mut checked = 0usize;
    let n_ts = a.results.n_timesteps();
    for ts in [0, n_ts / 2, n_ts - 1] {
        assert_eq!(
            a.results.groups_integrated(ts),
            b.results.groups_integrated(ts),
            "{what}: every (group, timestep) must integrate exactly once, ts {ts}"
        );
        let pairs = [
            (a.results.min_field(ts), b.results.min_field(ts), "min"),
            (a.results.max_field(ts), b.results.max_field(ts), "max"),
            (
                a.results.threshold_probability_field(ts, 0),
                b.results.threshold_probability_field(ts, 0),
                "P(Y>thr)",
            ),
        ];
        for (x, y, name) in pairs {
            for (c, (va, vb)) in x.iter().zip(&y).enumerate() {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{what}: {name} ts {ts} cell {c}: {va} vs {vb}"
                );
            }
            checked += x.len();
        }
    }
    checked
}

/// Sobol' indices to pairwise-merge rounding; returns the worst relative gap.
fn max_sobol_gap(a: &StudyOutput, b: &StudyOutput) -> f64 {
    let last = a.results.n_timesteps() - 1;
    let mut max_rel = 0.0f64;
    for k in 0..a.results.dim() {
        for (x, y) in a
            .results
            .first_order_field(last, k)
            .iter()
            .zip(&b.results.first_order_field(last, k))
        {
            let rel = (x - y).abs() / (1.0 + x.abs());
            assert!(rel < 1e-9, "S_k diverged beyond merge rounding: {x} vs {y}");
            max_rel = max_rel.max(rel);
        }
    }
    max_rel
}

fn main() {
    let router = GroupRouter::from_config(&config(TransportKind::InProcess, "probe"));
    print!("group routing (epoch 0):");
    for k in 0..N_SHARDS {
        print!(" shard{k}={:?}", router.groups_for_shard(k, N_GROUPS));
    }
    println!();

    println!("== static fault-free reference, in-process ==");
    let reference = run(config(TransportKind::InProcess, "ref"), FaultPlan::none());
    println!("{}", reference.report);

    let (plan, src, victim) = chaos_plan(&router);
    println!(
        "== chaos run, in-process: shard {src} drains to new slot {N_SHARDS}, \
         shard {victim} dies permanently =="
    );
    let chaos = run(config(TransportKind::InProcess, "chaos"), plan.clone());
    println!("{}", chaos.report);

    println!("== same chaos script over TCP loopback ==");
    let chaos_tcp = run(config(TransportKind::Tcp, "chaos-tcp"), plan);
    println!("{}", chaos_tcp.report);

    for (name, out) in [("in-process", &chaos), ("tcp", &chaos_tcp)] {
        assert_eq!(out.report.groups_finished, N_GROUPS, "{name}: all finished");
        assert!(out.report.groups_migrated >= 2, "{name}: fences moved work");
        assert_eq!(out.report.shards_rehomed, 1, "{name}: one shard re-homed");
        assert_eq!(out.report.shards_joined, 1, "{name}: one slot joined");
        assert_eq!(out.report.routing_epoch, 2, "{name}: two fences raised");
    }

    let c1 = assert_order_exact_identical("static vs chaos (in-process)", &reference, &chaos);
    let c2 = assert_order_exact_identical("static vs chaos (tcp)", &reference, &chaos_tcp);
    let g1 = max_sobol_gap(&reference, &chaos);
    let g2 = max_sobol_gap(&reference, &chaos_tcp);

    println!(
        "rebalance parity: {} order-exact values bit-identical under migration \
         + re-homing in-process, {} over TCP;",
        c1, c2
    );
    println!(
        "                  Sobol' within {:.2e} (in-process) / {:.2e} (tcp) of the \
         static run (pairwise-merge rounding).",
        g1, g2
    );
}
