//! A sharded multi-server study: four complete Melissa Server instances
//! behind a seeded group-hash router, reduced into one result set.
//!
//! The same seeded 4-shard study runs three times — over in-process
//! channels, over real TCP loopback sockets, and in-process with one
//! shard's server killed mid-study and restored from its checkpoint —
//! and all three produce **bit-identical** statistics across every
//! family (Sobol', moments, min/max, thresholds, quantiles): neither the
//! transport, nor the thread schedule, nor a shard failover adds a single
//! bit of numerical noise.
//!
//! Against the equivalent **1-shard** run the order-exact families
//! (min/max envelope, threshold exceedance, group counts) are also bit
//! identical, while Sobol'/moments agree to pairwise-merge rounding
//! (`~1e-12` relative — the Pébay merge is exact mathematics, reordered
//! floating point).  See `melissa::shard` for why that distinction is
//! fundamental and not an implementation gap.
//!
//! Run with: `cargo run --release --example sharded_study`

use std::time::Duration;

use melissa_repro::melissa::shard::GroupRouter;
use melissa_repro::melissa::{FaultPlan, Study, StudyConfig, StudyOutput};
use melissa_repro::transport::TransportKind;

const N_SHARDS: usize = 4;
const N_GROUPS: usize = 8;

fn config(n_shards: usize, kind: TransportKind, tag: &str) -> StudyConfig {
    let mut config = StudyConfig::tiny();
    config.n_groups = N_GROUPS;
    config.n_shards = n_shards;
    config.transport = kind;
    config.max_concurrent_groups = 1; // sequential ⇒ bit-reproducible
                                      // One global capacity unit queues trailing shards' groups; keep the
                                      // zombie detector from misreading queue latency as a fault.
    config.group_timeout = Duration::from_secs(15);
    config.server_timeout = Duration::from_secs(15);
    config.checkpoint_dir =
        std::env::temp_dir().join(format!("melissa-ex-shard-{tag}-{}", std::process::id()));
    config.wall_limit = Duration::from_secs(300);
    config
}

fn run(config: StudyConfig, faults: FaultPlan) -> StudyOutput {
    std::fs::remove_dir_all(&config.checkpoint_dir).ok();
    let dir = config.checkpoint_dir.clone();
    let out = Study::new(config)
        .with_faults(faults)
        .run()
        .expect("study failed");
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// Compares every statistics family bit for bit; returns values checked.
fn assert_bit_identical(what: &str, a: &StudyOutput, b: &StudyOutput) -> usize {
    let mut checked = 0usize;
    let n_ts = a.results.n_timesteps();
    let mut eq = |name: &str, ts: usize, x: &[f64], y: &[f64]| {
        assert_eq!(x.len(), y.len());
        for (c, (va, vb)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{what}: {name} ts {ts} cell {c}: {va} vs {vb}"
            );
        }
        checked += x.len();
    };
    for ts in [0, n_ts / 2, n_ts - 1] {
        assert_eq!(
            a.results.groups_integrated(ts),
            b.results.groups_integrated(ts),
            "{what}: group count ts {ts}"
        );
        for k in 0..a.results.dim() {
            eq(
                "S_k",
                ts,
                &a.results.first_order_field(ts, k),
                &b.results.first_order_field(ts, k),
            );
            eq(
                "ST_k",
                ts,
                &a.results.total_order_field(ts, k),
                &b.results.total_order_field(ts, k),
            );
        }
        eq(
            "mean",
            ts,
            &a.results.mean_field(ts),
            &b.results.mean_field(ts),
        );
        eq(
            "variance",
            ts,
            &a.results.variance_field(ts),
            &b.results.variance_field(ts),
        );
        eq(
            "min",
            ts,
            &a.results.min_field(ts),
            &b.results.min_field(ts),
        );
        eq(
            "max",
            ts,
            &a.results.max_field(ts),
            &b.results.max_field(ts),
        );
        eq(
            "P(Y>thr)",
            ts,
            &a.results.threshold_probability_field(ts, 0),
            &b.results.threshold_probability_field(ts, 0),
        );
        for q in 0..a.results.quantile_probs().len() {
            eq(
                "quantile",
                ts,
                &a.results.quantile_field(ts, q),
                &b.results.quantile_field(ts, q),
            );
        }
    }
    checked
}

fn main() {
    let router = GroupRouter::from_config(&config(N_SHARDS, TransportKind::InProcess, "probe"));
    print!("group routing:");
    for k in 0..N_SHARDS {
        print!(" shard{k}={:?}", router.groups_for_shard(k, N_GROUPS));
    }
    println!();

    println!("== {N_SHARDS}-shard study, in-process ==");
    let inproc = run(
        config(N_SHARDS, TransportKind::InProcess, "inproc"),
        FaultPlan::none(),
    );
    println!("{}", inproc.report);

    println!("== same seeded study over TCP loopback ==");
    let tcp = run(
        config(N_SHARDS, TransportKind::Tcp, "tcp"),
        FaultPlan::none(),
    );
    println!("{}", tcp.report);

    println!("== same seeded study, one shard killed and restored ==");
    let victim = (0..N_SHARDS)
        .max_by_key(|&k| router.groups_for_shard(k, N_GROUPS).len())
        .unwrap();
    let mut kill_cfg = config(N_SHARDS, TransportKind::InProcess, "killed");
    kill_cfg.checkpoint_interval = Duration::from_millis(150);
    let killed = run(
        kill_cfg,
        FaultPlan::none().with_server_kill_after_on_shard(1, victim),
    );
    println!("{}", killed.report);
    assert!(
        killed.report.server_restarts >= 1,
        "shard {victim} must have been killed and restored"
    );

    println!("== equivalent 1-shard study ==");
    let single = run(
        config(1, TransportKind::InProcess, "single"),
        FaultPlan::none(),
    );
    println!("{}", single.report);

    // The headline determinism claims: transport backends and shard
    // failover are invisible in the bits.
    let c1 = assert_bit_identical("in-process vs TCP", &inproc, &tcp);
    let c2 = assert_bit_identical("fault-free vs kill+restore", &inproc, &killed);

    // Against the single server: order-exact families bitwise; pairwise
    // families to merge rounding.
    let last = single.results.n_timesteps() - 1;
    let mut exact = 0usize;
    for (x, y) in single
        .results
        .min_field(last)
        .iter()
        .zip(&inproc.results.min_field(last))
    {
        assert_eq!(x.to_bits(), y.to_bits(), "min envelope diverged");
        exact += 1;
    }
    for (x, y) in single
        .results
        .max_field(last)
        .iter()
        .zip(&inproc.results.max_field(last))
    {
        assert_eq!(x.to_bits(), y.to_bits(), "max envelope diverged");
        exact += 1;
    }
    for (x, y) in single
        .results
        .threshold_probability_field(last, 0)
        .iter()
        .zip(&inproc.results.threshold_probability_field(last, 0))
    {
        assert_eq!(x.to_bits(), y.to_bits(), "threshold probability diverged");
        exact += 1;
    }
    let mut max_rel = 0.0f64;
    for k in 0..single.results.dim() {
        for (x, y) in single
            .results
            .first_order_field(last, k)
            .iter()
            .zip(&inproc.results.first_order_field(last, k))
        {
            let rel = (x - y).abs() / (1.0 + x.abs());
            assert!(rel < 1e-9, "S_k diverged beyond merge rounding: {x} vs {y}");
            max_rel = max_rel.max(rel);
        }
    }

    println!(
        "parity: {} values bit-identical across backends, {} across kill+restore;",
        c1, c2
    );
    println!(
        "        {exact} order-exact values bit-identical to the 1-shard run, \
         Sobol' within {max_rel:.2e} of it (pairwise-merge rounding)."
    );
}
